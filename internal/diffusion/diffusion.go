// Package diffusion implements the three canonical evolution dynamics of
// §3.1 of the paper: the Heat Kernel, PageRank, and the Lazy Random Walk.
// Each takes an input seed distribution and an "aggressiveness" parameter
// (t, γ, and the step count respectively); run to the limit they forget
// the seed and converge to the stationary distribution, truncated early
// they compute the implicitly regularized objects that §3.1 characterizes
// as exact optima of regularized SDPs (see package regsdp).
package diffusion

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/spectral"
	"repro/internal/vec"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget.
var ErrNoConvergence = errors.New("diffusion: solver did not converge")

// SeedVector returns the uniform probability distribution over the given
// seed nodes as a length-n vector.
func SeedVector(n int, seeds []int) ([]float64, error) {
	if len(seeds) == 0 {
		return nil, errors.New("diffusion: empty seed set")
	}
	s := make([]float64, n)
	w := 1 / float64(len(seeds))
	for _, u := range seeds {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("diffusion: seed %d out of range [0,%d)", u, n)
		}
		s[u] += w
	}
	return s, nil
}

// DegreeSeedVector returns the degree-weighted distribution over seeds,
// s[u] ∝ deg(u), the seed normalization used by local spectral methods.
func DegreeSeedVector(g *graph.Graph, seeds []int) ([]float64, error) {
	if len(seeds) == 0 {
		return nil, errors.New("diffusion: empty seed set")
	}
	s := make([]float64, g.N())
	var total float64
	for _, u := range seeds {
		if u < 0 || u >= g.N() {
			return nil, fmt.Errorf("diffusion: seed %d out of range [0,%d)", u, g.N())
		}
		s[u] += g.Degree(u)
		total += g.Degree(u)
	}
	if total == 0 {
		return nil, errors.New("diffusion: seed set has zero volume")
	}
	vec.Scale(1/total, s)
	return s, nil
}

// StationaryDistribution returns the random-walk stationary distribution
// π with π(u) = deg(u)/vol(V).
func StationaryDistribution(g *graph.Graph) []float64 {
	n := g.N()
	pi := make([]float64, n)
	volume := g.Volume()
	if volume == 0 {
		return pi
	}
	for u := 0; u < n; u++ {
		pi[u] = g.Degree(u) / volume
	}
	return pi
}

// LazyWalk evolves the seed distribution for k steps of the lazy random
// walk W_α = αI + (1−α)AD^{-1} and returns the resulting distribution.
// k is the aggressiveness parameter: k→∞ converges to the stationary
// distribution for α ∈ (0,1); small k keeps the output seed-dependent.
func LazyWalk(g *graph.Graph, seed []float64, alpha float64, k int) ([]float64, error) {
	if len(seed) != g.N() {
		return nil, fmt.Errorf("diffusion: seed length %d != %d nodes", len(seed), g.N())
	}
	if k < 0 {
		return nil, fmt.Errorf("diffusion: negative step count %d", k)
	}
	w, err := spectral.LazyWalkMatrix(g, alpha)
	if err != nil {
		return nil, fmt.Errorf("diffusion: LazyWalk: %w", err)
	}
	x := vec.Clone(seed)
	y := make([]float64, g.N())
	for step := 0; step < k; step++ {
		y = w.MulVec(x, y)
		x, y = y, x
	}
	return x, nil
}

// PageRankOptions configures the PageRank solver. The zero value uses
// Tol=1e-12 and MaxIter=10_000.
type PageRankOptions struct {
	Tol     float64
	MaxIter int
}

// PageRank computes the Personalized PageRank vector of Eq. (2) of the
// paper: pr = γ (I − (1−γ) M)^{-1} s with M = A D^{-1}, solved by the
// Richardson iteration x ← γ s + (1−γ) M x, which converges
// geometrically with rate (1−γ). The teleportation parameter γ ∈ (0, 1]
// is the aggressiveness knob: γ→0 forgets the seed (stationary limit),
// γ→1 returns the seed itself.
func PageRank(g *graph.Graph, seed []float64, gamma float64, opt PageRankOptions) ([]float64, error) {
	if len(seed) != g.N() {
		return nil, fmt.Errorf("diffusion: seed length %d != %d nodes", len(seed), g.N())
	}
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("diffusion: PageRank gamma=%v outside (0,1]", gamma)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10000
	}
	if gamma == 1 {
		return vec.Clone(seed), nil
	}
	m := spectral.WalkMatrix(g)
	x := vec.Clone(seed)
	y := make([]float64, g.N())
	for it := 0; it < maxIter; it++ {
		y = m.MulVec(x, y)
		for i := range y {
			y[i] = gamma*seed[i] + (1-gamma)*y[i]
		}
		if vec.MaxAbsDiff(x, y) < tol {
			copy(x, y)
			return x, nil
		}
		x, y = y, x
	}
	return x, fmt.Errorf("%w: PageRank after %d iterations (gamma=%v)", ErrNoConvergence, maxIter, gamma)
}

// PageRankSteps runs exactly k Richardson iterations of the PageRank
// fixed point from the seed, the "early stopping" variant used by the
// experiments.
func PageRankSteps(g *graph.Graph, seed []float64, gamma float64, k int) ([]float64, error) {
	if len(seed) != g.N() {
		return nil, fmt.Errorf("diffusion: seed length %d != %d nodes", len(seed), g.N())
	}
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("diffusion: PageRank gamma=%v outside (0,1]", gamma)
	}
	if k < 0 {
		return nil, fmt.Errorf("diffusion: negative step count %d", k)
	}
	m := spectral.WalkMatrix(g)
	x := vec.Clone(seed)
	y := make([]float64, g.N())
	for it := 0; it < k; it++ {
		y = m.MulVec(x, y)
		for i := range y {
			y[i] = gamma*seed[i] + (1-gamma)*y[i]
		}
		x, y = y, x
	}
	return x, nil
}

// HeatKernelOptions configures the heat-kernel evaluation. The zero value
// uses Tol=1e-12 and MaxTerms=10_000.
type HeatKernelOptions struct {
	Tol      float64
	MaxTerms int
}

// HeatKernel computes exp(−t·𝓛_rw) s where 𝓛_rw = I − M is the
// random-walk Laplacian, via the Taylor series
// exp(−t(I−M)) = e^{-t} Σ_k t^k M^k / k!. The time parameter t ≥ 0 is the
// aggressiveness knob of the heat equation ∂H_t/∂t = −L H_t quoted in
// §3.1: t→∞ equilibrates to the stationary distribution.
func HeatKernel(g *graph.Graph, seed []float64, t float64, opt HeatKernelOptions) ([]float64, error) {
	if len(seed) != g.N() {
		return nil, fmt.Errorf("diffusion: seed length %d != %d nodes", len(seed), g.N())
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("diffusion: HeatKernel t=%v invalid", t)
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	maxTerms := opt.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 10000
	}
	m := spectral.WalkMatrix(g)
	// out = e^{-t} Σ_k (t^k/k!) M^k s, accumulating term-by-term. The
	// coefficient weights are the Poisson(t) pmf, so we can stop when the
	// remaining tail mass is below tol (all ||M^k s||₁ ≤ ||s||₁).
	term := vec.Clone(seed) // M^k s
	out := vec.Clone(seed)  // Σ so far with weight w_k = t^k/k!
	weight := 1.0           // t^k/k! for current k
	sumWeights := 1.0
	next := make([]float64, g.N())
	for k := 1; k <= maxTerms; k++ {
		next = m.MulVec(term, next)
		term, next = next, term
		weight *= t / float64(k)
		vec.Axpy(weight, term, out)
		sumWeights += weight
		// Tail of e^{-t}Σ t^k/k! after K terms; once the accumulated
		// weight covers 1−tol of e^{t}, stop.
		if sumWeights >= (1-tol)*math.Exp(t) {
			vec.Scale(math.Exp(-t), out)
			return out, nil
		}
	}
	vec.Scale(math.Exp(-t), out)
	return out, fmt.Errorf("%w: HeatKernel series after %d terms (t=%v)", ErrNoConvergence, maxTerms, t)
}

// HeatKernelDense computes exp(−tL)·s for an arbitrary symmetric CSR
// operator L via dense eigendecomposition. It is the reference
// implementation used to validate HeatKernel and to evaluate the heat
// dynamics on the normalized Laplacian (the operator of the §3.1 SDP),
// at small n.
func HeatKernelDense(l *mat.CSR, seed []float64, t float64) ([]float64, error) {
	if l.Rows != l.ColsN {
		return nil, fmt.Errorf("diffusion: HeatKernelDense requires square operator, got %dx%d", l.Rows, l.ColsN)
	}
	if len(seed) != l.Rows {
		return nil, fmt.Errorf("diffusion: seed length %d != %d", len(seed), l.Rows)
	}
	e, err := mat.SymEigen(l.Dense())
	if err != nil {
		return nil, fmt.Errorf("diffusion: HeatKernelDense: %w", err)
	}
	h := e.Reconstruct(func(lam float64) float64 { return math.Exp(-t * lam) })
	return h.MulVec(seed), nil
}

// Equilibrium measures how far a distribution x is from the stationary
// distribution π in total variation distance, ½||x − π||₁. A diffusion
// run "to the limiting value of the aggressiveness parameter" drives this
// to zero, independent of the seed — the un-regularized regime.
func Equilibrium(g *graph.Graph, x []float64) float64 {
	pi := StationaryDistribution(g)
	var s float64
	for i := range x {
		s += math.Abs(x[i] - pi[i])
	}
	return s / 2
}

package diffusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/vec"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func connectedER(t *testing.T, seed int64, n int, p float64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for tries := 0; tries < 50; tries++ {
		g, err := gen.ErdosRenyi(n, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.IsConnected() {
			return g
		}
	}
	t.Fatal("could not sample a connected ER graph")
	return nil
}

func TestSeedVector(t *testing.T) {
	s, err := SeedVector(5, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 0.5 || s[3] != 0.5 || vec.Sum(s) != 1 {
		t.Fatalf("SeedVector = %v", s)
	}
	if _, err := SeedVector(5, nil); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := SeedVector(5, []int{9}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestDegreeSeedVector(t *testing.T) {
	g := gen.Star(4) // deg(0)=3, others 1
	s, err := DegreeSeedVector(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s[0], 0.75, 1e-12) || !almostEq(s[1], 0.25, 1e-12) {
		t.Fatalf("DegreeSeedVector = %v", s)
	}
}

func TestLazyWalkPreservesMass(t *testing.T) {
	g := gen.RingOfCliques(3, 4)
	seed, err := SeedVector(g.N(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	x, err := LazyWalk(g, seed, 0.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vec.Sum(x), 1, 1e-10) {
		t.Fatalf("mass after lazy walk = %v", vec.Sum(x))
	}
	for i, v := range x {
		if v < -1e-12 {
			t.Fatalf("negative probability x[%d] = %v", i, v)
		}
	}
}

func TestLazyWalkZeroStepsIsSeed(t *testing.T) {
	g := gen.Cycle(6)
	seed, _ := SeedVector(6, []int{2})
	x, err := LazyWalk(g, seed, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(x, seed) != 0 {
		t.Fatal("0-step walk changed the seed")
	}
}

func TestLazyWalkEquilibrates(t *testing.T) {
	g := connectedER(t, 1, 30, 0.2)
	seed, _ := SeedVector(g.N(), []int{0})
	far, err := LazyWalk(g, seed, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	near, err := LazyWalk(g, seed, 0.5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if Equilibrium(g, near) > 1e-6 {
		t.Errorf("long lazy walk TV distance = %v, want ~0", Equilibrium(g, near))
	}
	if Equilibrium(g, far) < Equilibrium(g, near) {
		t.Error("short walk closer to equilibrium than long walk")
	}
}

func TestPageRankIsLinearSystemSolution(t *testing.T) {
	// Verify pr satisfies pr = γ s + (1−γ) M pr.
	g := connectedER(t, 2, 25, 0.25)
	seed, _ := SeedVector(g.N(), []int{3})
	gamma := 0.15
	pr, err := PageRank(g, seed, gamma, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := spectral.WalkMatrix(g)
	rhs := m.MulVec(pr, nil)
	for i := range rhs {
		rhs[i] = gamma*seed[i] + (1-gamma)*rhs[i]
	}
	if vec.MaxAbsDiff(pr, rhs) > 1e-9 {
		t.Fatalf("PageRank fixed-point residual = %v", vec.MaxAbsDiff(pr, rhs))
	}
	if !almostEq(vec.Sum(pr), 1, 1e-9) {
		t.Fatalf("PageRank mass = %v", vec.Sum(pr))
	}
}

func TestPageRankGammaOneIsSeed(t *testing.T) {
	g := gen.Cycle(5)
	seed, _ := SeedVector(5, []int{1})
	pr, err := PageRank(g, seed, 1, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(pr, seed) != 0 {
		t.Fatal("gamma=1 should return the seed exactly")
	}
}

func TestPageRankSmallGammaNearStationary(t *testing.T) {
	g := connectedER(t, 3, 30, 0.3)
	seed, _ := SeedVector(g.N(), []int{0})
	pr, err := PageRank(g, seed, 0.001, PageRankOptions{MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if Equilibrium(g, pr) > 0.02 {
		t.Errorf("gamma→0 PageRank TV distance from π = %v", Equilibrium(g, pr))
	}
}

func TestPageRankErrors(t *testing.T) {
	g := gen.Cycle(4)
	seed, _ := SeedVector(4, []int{0})
	if _, err := PageRank(g, seed, 0, PageRankOptions{}); err == nil {
		t.Fatal("gamma=0 accepted")
	}
	if _, err := PageRank(g, seed[:2], 0.2, PageRankOptions{}); err == nil {
		t.Fatal("bad seed length accepted")
	}
}

func TestPageRankStepsConvergesToFixedPoint(t *testing.T) {
	g := connectedER(t, 4, 20, 0.3)
	seed, _ := SeedVector(g.N(), []int{1})
	exact, err := PageRank(g, seed, 0.2, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 5, 25, 125} {
		xk, err := PageRankSteps(g, seed, 0.2, k)
		if err != nil {
			t.Fatal(err)
		}
		d := vec.MaxAbsDiff(xk, exact)
		if d > prev+1e-12 {
			t.Fatalf("PageRankSteps not monotone toward fixed point at k=%d: %v > %v", k, d, prev)
		}
		prev = d
	}
	if prev > 1e-6 {
		t.Errorf("PageRankSteps(125) still %v from fixed point", prev)
	}
}

func TestHeatKernelMatchesDense(t *testing.T) {
	g := connectedER(t, 5, 20, 0.3)
	seed, _ := SeedVector(g.N(), []int{2})
	for _, tm := range []float64{0.1, 1, 5} {
		fast, err := HeatKernel(g, seed, tm, HeatKernelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference on the same operator 𝓛_rw = I − M: build
		// I − M in symmetric coordinates. M = A D^{-1} is similar to the
		// symmetric 𝓝 = D^{-1/2} A D^{-1/2}: M = D^{1/2} 𝓝 D^{-1/2}.
		// So exp(−t(I−M)) s = D^{1/2} exp(−t𝓛) D^{-1/2} s.
		lap := spectral.NormalizedLaplacian(g)
		deg := g.Degrees()
		sTilde := vec.ScaleByDegree(seed, deg, -0.5)
		hTilde, err := HeatKernelDense(lap, sTilde, tm)
		if err != nil {
			t.Fatal(err)
		}
		want := vec.ScaleByDegree(hTilde, deg, 0.5)
		if d := vec.MaxAbsDiff(fast, want); d > 1e-8 {
			t.Fatalf("t=%v: heat kernel mismatch %v", tm, d)
		}
	}
}

func TestHeatKernelZeroTimeIsSeed(t *testing.T) {
	g := gen.Cycle(7)
	seed, _ := SeedVector(7, []int{0})
	x, err := HeatKernel(g, seed, 0, HeatKernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(x, seed) > 1e-12 {
		t.Fatal("t=0 heat kernel changed the seed")
	}
}

func TestHeatKernelEquilibrates(t *testing.T) {
	g := connectedER(t, 6, 25, 0.3)
	seed, _ := SeedVector(g.N(), []int{0})
	x, err := HeatKernel(g, seed, 200, HeatKernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if Equilibrium(g, x) > 1e-6 {
		t.Errorf("t=200 heat kernel TV distance = %v", Equilibrium(g, x))
	}
}

func TestHeatKernelErrors(t *testing.T) {
	g := gen.Cycle(4)
	seed, _ := SeedVector(4, []int{0})
	if _, err := HeatKernel(g, seed, -1, HeatKernelOptions{}); err == nil {
		t.Fatal("negative t accepted")
	}
	if _, err := HeatKernel(g, seed, math.NaN(), HeatKernelOptions{}); err == nil {
		t.Fatal("NaN t accepted")
	}
}

func TestStationaryDistribution(t *testing.T) {
	g := gen.Star(4)
	pi := StationaryDistribution(g)
	// vol = 6; π(center) = 3/6.
	if !almostEq(pi[0], 0.5, 1e-12) || !almostEq(pi[1], 1.0/6, 1e-12) {
		t.Fatalf("π = %v", pi)
	}
	if !almostEq(vec.Sum(pi), 1, 1e-12) {
		t.Fatal("π does not sum to 1")
	}
}

// Property: all three dynamics preserve probability mass and
// nonnegativity for any connected graph, seed node and parameter within
// range.
func TestPropDynamicsPreserveDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.ErdosRenyi(5+rng.Intn(20), 0.4, rng)
		if err != nil || !g.IsConnected() || g.N() < 2 {
			return true
		}
		s, err := SeedVector(g.N(), []int{rng.Intn(g.N())})
		if err != nil {
			return false
		}
		lw, err := LazyWalk(g, s, 0.5+rng.Float64()*0.45, rng.Intn(20))
		if err != nil {
			return false
		}
		pr, err := PageRank(g, s, 0.05+rng.Float64()*0.9, PageRankOptions{})
		if err != nil {
			return false
		}
		hk, err := HeatKernel(g, s, rng.Float64()*5, HeatKernelOptions{})
		if err != nil {
			return false
		}
		for _, x := range [][]float64{lw, pr, hk} {
			if !almostEq(vec.Sum(x), 1, 1e-8) {
				return false
			}
			for _, v := range x {
				if v < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the aggressiveness parameter interpolates monotonically
// between seed and equilibrium for the heat kernel.
func TestPropHeatKernelMonotoneEquilibration(t *testing.T) {
	g := connectedER(t, 7, 20, 0.3)
	seed, _ := SeedVector(g.N(), []int{0})
	prev := math.Inf(1)
	for _, tm := range []float64{0.1, 0.5, 1, 2, 4, 8, 16, 32} {
		x, err := HeatKernel(g, seed, tm, HeatKernelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eq := Equilibrium(g, x)
		if eq > prev+1e-9 {
			t.Fatalf("equilibration not monotone at t=%v: %v > %v", tm, eq, prev)
		}
		prev = eq
	}
}

package stream

import (
	"math/rand"
	"sort"
	"testing"
)

// mapAdjRow is the legacy adjacency representation (one map per node),
// kept here as the baseline for BenchmarkDynamicSampleNeighbor: the map
// forced every sample to copy and sort the key set just to get a
// deterministic draw.
type mapAdjRow map[int]float64

func (row mapAdjRow) sample(rng *rand.Rand) (int, bool) {
	if len(row) == 0 {
		return -1, false
	}
	nbrs := make([]int, 0, len(row))
	for v := range row {
		nbrs = append(nbrs, v)
	}
	sort.Ints(nbrs)
	total := 0.0
	for _, v := range nbrs {
		total += row[v]
	}
	x := rng.Float64() * total
	for _, v := range nbrs {
		x -= row[v]
		if x <= 0 {
			return v, true
		}
	}
	return nbrs[len(nbrs)-1], true
}

// BenchmarkDynamicSampleNeighbor measures one weighted neighbor draw —
// the hot operation of IncrementalPPR's walk (re)drawing — on the
// sorted-slice row against the legacy map row. The slice path is the
// reason dynamic.go dropped the per-node maps: no per-sample copy,
// sort, or allocation.
func BenchmarkDynamicSampleNeighbor(b *testing.B) {
	const deg = 64
	g, err := NewDynamicGraph(deg + 1)
	if err != nil {
		b.Fatal(err)
	}
	legacy := make(mapAdjRow, deg)
	for v := 1; v <= deg; v++ {
		if err := g.AddEdge(0, v, float64(v)); err != nil {
			b.Fatal(err)
		}
		legacy[v] = float64(v)
	}
	b.Run("sorted-slice", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := g.sampleNeighbor(0, rng); !ok {
				b.Fatal("no neighbor")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := legacy.sample(rng); !ok {
				b.Fatal("no neighbor")
			}
		}
	})
}

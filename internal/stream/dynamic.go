package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// dynRow is one node's adjacency: neighbor ids sorted ascending with
// parallel weights. The sorted-slice representation replaces the old
// map[int]float64 per node: the hot loop is sampleNeighbor (called once
// per walk step and once per resampled suffix step), which previously
// had to copy every key out of the map and sort it on every call just
// to make iteration deterministic. On the slice it is a single
// allocation-free scan; lookup is a binary search, and insert/remove
// pay an O(deg) shift only on topology changes, which are orders of
// magnitude rarer than samples. BenchmarkDynamicSampleNeighbor in
// dynamic_bench_test.go records the gap.
type dynRow struct {
	ids []int
	ws  []float64
}

// find returns the position of v in the row and whether it is present;
// absent neighbors report the insertion point.
func (r *dynRow) find(v int) (int, bool) {
	i := sort.SearchInts(r.ids, v)
	return i, i < len(r.ids) && r.ids[i] == v
}

func (r *dynRow) add(v int, w float64) {
	if i, ok := r.find(v); ok {
		r.ws[i] += w
	} else {
		r.ids = append(r.ids, 0)
		r.ws = append(r.ws, 0)
		copy(r.ids[i+1:], r.ids[i:])
		copy(r.ws[i+1:], r.ws[i:])
		r.ids[i] = v
		r.ws[i] = w
	}
}

func (r *dynRow) remove(v int) {
	if i, ok := r.find(v); ok {
		r.ids = append(r.ids[:i], r.ids[i+1:]...)
		r.ws = append(r.ws[:i], r.ws[i+1:]...)
	}
}

// DynamicGraph is a mutable adjacency-list multigraph supporting edge
// insertion and deletion, the substrate for incremental PageRank on a
// dynamically-evolving network (paper reference [6]). It intentionally
// does not share the immutable CSR representation in internal/graph:
// evolving social networks need cheap point updates, not a frozen
// row-pointer array, and keeping the two types separate keeps the static
// analysis code honest about which algorithms assume a fixed graph.
type DynamicGraph struct {
	n   int
	adj []dynRow
	m   int // number of edges
}

// NewDynamicGraph returns an empty dynamic graph on n nodes.
func NewDynamicGraph(n int) (*DynamicGraph, error) {
	if n < 0 {
		return nil, fmt.Errorf("stream: negative node count %d", n)
	}
	return &DynamicGraph{n: n, adj: make([]dynRow, n)}, nil
}

// N returns the number of nodes.
func (g *DynamicGraph) N() int { return g.n }

// M returns the number of distinct undirected edges currently present.
func (g *DynamicGraph) M() int { return g.m }

// Degree returns the weighted degree of u.
func (g *DynamicGraph) Degree(u int) float64 {
	var d float64
	for _, w := range g.adj[u].ws {
		d += w
	}
	return d
}

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *DynamicGraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u].find(v)
	return ok
}

// AddEdge inserts the undirected edge (u,v) with weight w, summing weights
// for repeated insertions.
func (g *DynamicGraph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("stream: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("stream: self-loop at %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("stream: non-positive edge weight %g", w)
	}
	if _, ok := g.adj[u].find(v); !ok {
		g.m++
	}
	g.adj[u].add(v, w)
	g.adj[v].add(u, w)
	return nil
}

// RemoveEdge deletes the undirected edge (u,v) entirely.
func (g *DynamicGraph) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("stream: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if _, ok := g.adj[u].find(v); !ok {
		return fmt.Errorf("stream: edge (%d,%d) not present", u, v)
	}
	g.adj[u].remove(v)
	g.adj[v].remove(u)
	g.m--
	return nil
}

// sampleNeighbor draws a neighbor of u with probability proportional to
// edge weight, or (-1, false) if u is isolated. The row is already
// sorted by node id, so the draw is deterministic for a given rng
// state and allocates nothing.
func (g *DynamicGraph) sampleNeighbor(u int, rng *rand.Rand) (int, bool) {
	row := &g.adj[u]
	if len(row.ids) == 0 {
		return -1, false
	}
	total := 0.0
	for _, w := range row.ws {
		total += w
	}
	x := rng.Float64() * total
	for i, v := range row.ids {
		x -= row.ws[i]
		if x <= 0 {
			return v, true
		}
	}
	return row.ids[len(row.ids)-1], true
}

// IncrementalPPR maintains an approximate Personalized PageRank vector for
// a fixed seed on a DynamicGraph across edge insertions and deletions,
// after Bahmani–Chowdhury–Goel (reference [6]). It stores R Monte Carlo
// walk paths from the seed; when an edge incident to node u changes, only
// the walk suffixes that pass through u are redrawn — in expectation
// O(R·π(u)) work per update rather than a full recomputation.
//
// The estimator is the visit-count identity
//
//	pr_γ(v) = γ · E[ number of visits to v before a Geometric(γ) stop ],
//
// averaged over the walk reservoir.
type IncrementalPPR struct {
	g     *DynamicGraph
	seed  int
	gamma float64
	rng   *rand.Rand

	walks [][]int32 // walks[i] is the node sequence of walk i (starts at seed)
	// visits[u] maps walk id -> first index at which the walk visits u;
	// only the first visit matters for resampling (the suffix redraw from
	// there re-randomizes everything after it).
	visits []map[int32]int32

	resampled int // total suffix redraws, for observability
}

// NewIncrementalPPR builds the reservoir of walkCount walks from seed on
// the current state of g.
func NewIncrementalPPR(g *DynamicGraph, seed int, gamma float64, walkCount int, rng *rand.Rand) (*IncrementalPPR, error) {
	if g == nil {
		return nil, errors.New("stream: nil graph")
	}
	if seed < 0 || seed >= g.n {
		return nil, fmt.Errorf("stream: seed %d out of range [0,%d)", seed, g.n)
	}
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("stream: gamma=%v outside (0,1)", gamma)
	}
	if walkCount <= 0 {
		return nil, fmt.Errorf("stream: walk count %d must be positive", walkCount)
	}
	p := &IncrementalPPR{
		g: g, seed: seed, gamma: gamma, rng: rng,
		walks:  make([][]int32, walkCount),
		visits: make([]map[int32]int32, g.n),
	}
	for u := range p.visits {
		p.visits[u] = make(map[int32]int32)
	}
	for i := range p.walks {
		p.walks[i] = p.drawWalk(int32(p.seed))
		p.indexWalk(int32(i))
	}
	return p, nil
}

// drawWalk simulates a Geometric(gamma)-length lazy-stopping walk starting
// at from (inclusive) on the current graph.
func (p *IncrementalPPR) drawWalk(from int32) []int32 {
	path := []int32{from}
	cur := int(from)
	for p.rng.Float64() >= p.gamma {
		nxt, ok := p.g.sampleNeighbor(cur, p.rng)
		if !ok {
			break // dangling: walk is stranded, treated as stopped
		}
		cur = nxt
		path = append(path, int32(cur))
	}
	return path
}

func (p *IncrementalPPR) indexWalk(id int32) {
	for idx, u := range p.walks[id] {
		if _, seen := p.visits[u][id]; !seen {
			p.visits[u][id] = int32(idx)
		}
	}
}

func (p *IncrementalPPR) unindexWalk(id int32) {
	for _, u := range p.walks[id] {
		delete(p.visits[u], id)
	}
}

// resampleThrough redraws, for every walk visiting node u, the suffix
// starting at its first visit to u. Redrawing from the first visit makes
// the whole walk distributed as a fresh walk on the current graph
// conditioned on its (unchanged) prefix, which is the Bahmani et al.
// correctness argument.
func (p *IncrementalPPR) resampleThrough(u int) {
	ids := make([]int32, 0, len(p.visits[u]))
	for id := range p.visits[u] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		at := p.visits[u][id]
		p.unindexWalk(id)
		prefix := p.walks[id][:at]
		// The suffix redraw includes the stop lottery from the visit on:
		// continue the walk from u as if it had just arrived there.
		suffix := p.drawWalk(int32(u))
		p.walks[id] = append(append([]int32(nil), prefix...), suffix...)
		p.indexWalk(id)
		p.resampled++
	}
}

// AddEdge inserts an edge and repairs the reservoir.
func (p *IncrementalPPR) AddEdge(u, v int, w float64) error {
	if err := p.g.AddEdge(u, v, w); err != nil {
		return err
	}
	p.resampleThrough(u)
	p.resampleThrough(v)
	return nil
}

// RemoveEdge deletes an edge and repairs the reservoir.
func (p *IncrementalPPR) RemoveEdge(u, v int) error {
	if err := p.g.RemoveEdge(u, v); err != nil {
		return err
	}
	p.resampleThrough(u)
	p.resampleThrough(v)
	return nil
}

// Resampled reports the cumulative number of suffix redraws, the cost
// measure that reference [6] bounds.
func (p *IncrementalPPR) Resampled() int { return p.resampled }

// Estimate returns the current Personalized PageRank estimate as a dense
// distribution over nodes (sums to ~1).
func (p *IncrementalPPR) Estimate() []float64 {
	scores := make([]float64, p.g.n)
	var totalVisits float64
	for _, walk := range p.walks {
		totalVisits += float64(len(walk))
	}
	if totalVisits == 0 {
		return scores
	}
	// Visit-count estimator: pr(v) = γ·E[#visits to v]. Normalizing by
	// total visits instead of multiplying by γ/R gives the same vector up
	// to the simplex projection and is exact as R→∞ because
	// E[walk length] = 1/γ.
	for _, walk := range p.walks {
		for _, u := range walk {
			scores[u] += 1 / totalVisits
		}
	}
	return scores
}

// Walks exposes the reservoir size.
func (p *IncrementalPPR) Walks() int { return len(p.walks) }

// CheckInvariant verifies that every stored walk is a valid path in the
// current graph starting at the seed, and that the visit index matches
// the walks. Tests and failure-injection harnesses call it after update
// storms.
func (p *IncrementalPPR) CheckInvariant() error {
	for id, walk := range p.walks {
		if len(walk) == 0 || walk[0] != int32(p.seed) {
			return fmt.Errorf("stream: walk %d does not start at seed", id)
		}
		for k := 0; k+1 < len(walk); k++ {
			if !p.g.HasEdge(int(walk[k]), int(walk[k+1])) {
				return fmt.Errorf("stream: walk %d uses missing edge (%d,%d)", id, walk[k], walk[k+1])
			}
		}
	}
	for u := range p.visits {
		for id, at := range p.visits[u] {
			w := p.walks[id]
			if int(at) >= len(w) || w[at] != int32(u) {
				return fmt.Errorf("stream: stale visit index for node %d walk %d", u, id)
			}
		}
	}
	return nil
}

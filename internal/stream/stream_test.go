package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/local"
	"repro/internal/vec"
)

func TestStreamOfReplaysAllEdges(t *testing.T) {
	g := gen.Cycle(10)
	s := StreamOf(g, rand.New(rand.NewSource(1)))
	count := 0
	if err := s.Pass(func(Edge) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != g.M() {
		t.Errorf("stream yielded %d edges, graph has %d", count, g.M())
	}
	if s.Nodes() != 10 {
		t.Errorf("Nodes() = %d, want 10", s.Nodes())
	}
}

func TestStreamPageRankMatchesExactOnSmallGraph(t *testing.T) {
	// Global PageRank on a small dumbbell vs the exact dense solve. The
	// Monte Carlo error at 60k walks is well under the separation between
	// clique nodes and path nodes.
	g := gen.Dumbbell(6, 3)
	rng := rand.New(rand.NewSource(42))
	s := StreamOf(g, rng)
	gamma := 0.2
	res, err := StreamPageRank(s, PageRankOptions{Walks: 60000, Gamma: gamma, MaxSteps: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vec.Sum(res.Scores)-1) > 1e-9 {
		t.Errorf("scores sum to %g, want 1", vec.Sum(res.Scores))
	}

	// Exact: gamma*(I-(1-gamma)M)^{-1} applied to the uniform seed.
	n := g.N()
	seed := make([]float64, n)
	for i := range seed {
		seed[i] = 1 / float64(n)
	}
	exact, err := diffusion.PageRank(g, seed, gamma, diffusion.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(res.Scores[i]-exact[i]) > 0.01 {
			t.Errorf("node %d: stream %g vs exact %g", i, res.Scores[i], exact[i])
		}
	}
}

func TestStreamPageRankPersonalized(t *testing.T) {
	// Seeded walks: mass should concentrate near the seed's clique on a
	// dumbbell, and match the exact PPR ordering of the top nodes.
	g := gen.Dumbbell(8, 6)
	rng := rand.New(rand.NewSource(7))
	s := StreamOf(g, rng)
	gamma := 0.25
	res, err := StreamPageRank(s, PageRankOptions{Walks: 40000, Gamma: gamma, MaxSteps: 200, Seeds: []int{0}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]float64, g.N())
	seed[0] = 1
	exact, err := diffusion.PageRank(g, seed, gamma, diffusion.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The seed's own clique (nodes 0..7) must hold most of the mass in
	// both vectors.
	var mcMass, exMass float64
	for i := 0; i < 8; i++ {
		mcMass += res.Scores[i]
		exMass += exact[i]
	}
	if math.Abs(mcMass-exMass) > 0.03 {
		t.Errorf("clique mass: stream %g vs exact %g", mcMass, exMass)
	}
}

func TestStreamPageRankPassBudget(t *testing.T) {
	g := gen.Cycle(20)
	rng := rand.New(rand.NewSource(3))
	s := StreamOf(g, rng)
	res, err := StreamPageRank(s, PageRankOptions{Walks: 100, Gamma: 0.1, MaxSteps: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > 5 {
		t.Errorf("made %d passes, cap was 5", res.Passes)
	}
	if res.WalksCapped == 0 {
		t.Error("with MaxSteps=5 and gamma=0.1 some walks should be capped")
	}
}

func TestStreamPageRankValidation(t *testing.T) {
	g := gen.Cycle(5)
	rng := rand.New(rand.NewSource(1))
	s := StreamOf(g, rng)
	if _, err := StreamPageRank(s, PageRankOptions{Gamma: 1.5}, rng); err == nil {
		t.Error("gamma > 1 should error")
	}
	if _, err := StreamPageRank(s, PageRankOptions{Walks: -1}, rng); err == nil {
		t.Error("negative walks should error")
	}
	if _, err := StreamPageRank(s, PageRankOptions{Seeds: []int{9}}, rng); err == nil {
		t.Error("out-of-range seed should error")
	}
	empty := &SliceStream{N: 0}
	if _, err := StreamPageRank(empty, PageRankOptions{}, rng); err == nil {
		t.Error("empty graph should error")
	}
}

func TestStreamPageRankPropagatesPassError(t *testing.T) {
	s := &failingStream{n: 4}
	rng := rand.New(rand.NewSource(1))
	_, err := StreamPageRank(s, PageRankOptions{Walks: 8, Gamma: 0.2}, rng)
	if err == nil || !errors.Is(err, errStreamBroken) {
		t.Errorf("expected wrapped stream error, got %v", err)
	}
}

var errStreamBroken = errors.New("stream broke")

type failingStream struct{ n int }

func (f *failingStream) Pass(func(Edge)) error { return errStreamBroken }
func (f *failingStream) Nodes() int            { return f.n }

func TestDynamicGraphBasics(t *testing.T) {
	g, err := NewDynamicGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.HasEdge(1, 0) || g.Degree(1) != 3 {
		t.Errorf("unexpected state: M=%d deg(1)=%g", g.M(), g.Degree(1))
	}
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Error("remove failed")
	}
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Error("double-remove should error")
	}
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should error")
	}
	if err := g.AddEdge(0, 9, 1); err == nil {
		t.Error("out-of-range should error")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewDynamicGraph(-1); err == nil {
		t.Error("negative n should error")
	}
}

// buildBoth constructs the same random graph as a static graph.Graph and a
// DynamicGraph.
func buildBoth(t *testing.T, n int, p float64, seed int64) (*graph.Graph, []Edge) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.ErdosRenyi(n, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	g.Edges(func(u, v int, w float64) { edges = append(edges, Edge{U: u, V: v, W: w}) })
	return g, edges
}

func TestIncrementalPPRMatchesExactAfterBuild(t *testing.T) {
	// Build a graph edge by edge through the incremental maintainer, then
	// compare the estimate against the exact dense PPR of the final graph.
	g, edges := buildBoth(t, 24, 0.25, 5)
	dg, err := NewDynamicGraph(24)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	// Start from an empty graph: seed vertex only.
	ppr, err := NewIncrementalPPR(dg, 0, 0.2, 8000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := ppr.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	if err := ppr.CheckInvariant(); err != nil {
		t.Fatalf("invariant after build: %v", err)
	}

	seed := make([]float64, 24)
	seed[0] = 1
	exact, err := diffusion.PageRank(g, seed, 0.2, diffusion.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := ppr.Estimate()
	if math.Abs(vec.Sum(est)-1) > 1e-9 {
		t.Errorf("estimate sums to %g", vec.Sum(est))
	}
	for i := range exact {
		if math.Abs(est[i]-exact[i]) > 0.02 {
			t.Errorf("node %d: incremental %g vs exact %g", i, est[i], exact[i])
		}
	}
	if ppr.Resampled() == 0 {
		t.Error("edge insertions should have triggered resampling")
	}
}

func TestIncrementalPPRSurvivesDeletions(t *testing.T) {
	_, edges := buildBoth(t, 16, 0.4, 6)
	dg, err := NewDynamicGraph(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ppr, err := NewIncrementalPPR(dg, 2, 0.25, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := ppr.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a third of the edges again.
	for i, e := range edges {
		if i%3 == 0 {
			if err := ppr.RemoveEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ppr.CheckInvariant(); err != nil {
		t.Fatalf("invariant after deletions: %v", err)
	}
}

func TestIncrementalPPRValidation(t *testing.T) {
	dg, err := NewDynamicGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewIncrementalPPR(nil, 0, 0.2, 10, rng); err == nil {
		t.Error("nil graph should error")
	}
	if _, err := NewIncrementalPPR(dg, 9, 0.2, 10, rng); err == nil {
		t.Error("bad seed should error")
	}
	if _, err := NewIncrementalPPR(dg, 0, 0, 10, rng); err == nil {
		t.Error("gamma=0 should error")
	}
	if _, err := NewIncrementalPPR(dg, 0, 0.2, 0, rng); err == nil {
		t.Error("zero walks should error")
	}
}

// TestIncrementalPPRPropertyInvariant: random update storms (interleaved
// inserts and deletes) never break the reservoir invariant.
func TestIncrementalPPRPropertyInvariant(t *testing.T) {
	prop := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		n := 6 + rng.Intn(10)
		dg, err := NewDynamicGraph(n)
		if err != nil {
			return false
		}
		ppr, err := NewIncrementalPPR(dg, rng.Intn(n), 0.3, 50, rng)
		if err != nil {
			return false
		}
		for step := 0; step < 60; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if dg.HasEdge(u, v) && rng.Float64() < 0.4 {
				if err := ppr.RemoveEdge(u, v); err != nil {
					return false
				}
			} else if !dg.HasEdge(u, v) {
				if err := ppr.AddEdge(u, v, 1); err != nil {
					return false
				}
			}
		}
		return ppr.CheckInvariant() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBatchPPRMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := gen.ErdosRenyi(60, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 5, 10, 15, 20, 25, 30}
	opt := BatchPPROptions{Alpha: 0.2, Eps: 1e-4, Workers: 4}
	batch, err := BatchPersonalizedPageRank(g, sources, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		seq, err := local.ApproxPageRank(gstore.Wrap(g), []int{s}, opt.Alpha, opt.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Vectors[i]) != len(seq.P) {
			t.Fatalf("source %d: support %d vs %d", s, len(batch.Vectors[i]), len(seq.P))
		}
		for u, val := range seq.P {
			if batch.Vectors[i][u] != val {
				t.Errorf("source %d node %d: batch %g vs sequential %g", s, u, batch.Vectors[i][u], val)
			}
		}
	}
	if batch.TotalWork <= 0 {
		t.Error("TotalWork should be positive")
	}
}

func TestBatchPPRWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := gen.ErdosRenyi(40, 0.15, rng)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{1, 2, 3, 4, 5, 6, 7, 8}
	one, err := BatchPersonalizedPageRank(g, sources, BatchPPROptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := BatchPersonalizedPageRank(g, sources, BatchPPROptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		for u, val := range one.Vectors[i] {
			if many.Vectors[i][u] != val {
				t.Fatalf("worker-count nondeterminism at source %d node %d", sources[i], u)
			}
		}
	}
}

func TestBatchPPRValidation(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := BatchPersonalizedPageRank(g, nil, BatchPPROptions{}); err == nil {
		t.Error("no sources should error")
	}
	if _, err := BatchPersonalizedPageRank(g, []int{7}, BatchPPROptions{}); err == nil {
		t.Error("out-of-range source should error")
	}
}

func TestTopK(t *testing.T) {
	v := local.SparseVec{3: 0.5, 1: 0.2, 7: 0.5, 2: 0.1}
	got := TopK(v, 3)
	want := []int{3, 7, 1} // 0.5 tie broken by id, then 0.2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(v, 10)) != 4 {
		t.Error("k beyond support should clamp")
	}
}

// TestStreamPageRankPropertyDistribution: scores always form a probability
// distribution whatever the options.
func TestStreamPageRankPropertyDistribution(t *testing.T) {
	prop := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		n := 5 + rng.Intn(20)
		g, err := gen.ErdosRenyi(n, 0.3, rng)
		if err != nil {
			return true
		}
		st := StreamOf(g, rng)
		res, err := StreamPageRank(st, PageRankOptions{
			Walks:    200,
			Gamma:    0.05 + rng.Float64()*0.9,
			MaxSteps: 1 + rng.Intn(30),
		}, rng)
		if err != nil {
			return false
		}
		sum := vec.Sum(res.Scores)
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, x := range res.Scores {
			if x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestStreamVsDiffusionAgreement: the streaming estimator and the in-memory
// PageRank iteration approximate the same vector.
func TestStreamVsDiffusionAgreement(t *testing.T) {
	g := gen.RingOfCliques(5, 6)
	rng := rand.New(rand.NewSource(12))
	s := StreamOf(g, rng)
	gamma := 0.2
	mc, err := StreamPageRank(s, PageRankOptions{Walks: 50000, Gamma: gamma, MaxSteps: 300}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	seed := make([]float64, n)
	for i := range seed {
		seed[i] = 1 / float64(n)
	}
	iterative, err := diffusion.PageRank(g, seed, gamma, diffusion.PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.Norm1(vec.Sub(mc.Scores, iterative)); d > 0.08 {
		t.Errorf("L1 distance between stream and iterative PageRank: %g", d)
	}
}

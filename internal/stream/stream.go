// Package stream implements the database-environment diffusion primitives
// that Section 3.3 of the paper points to as the operational, interactive
// approach already adopted in practice:
//
//   - PageRank estimation over a graph stream, after Das Sarma, Gollapudi
//     and Panigrahy (PODS 2008, paper reference [37]): the graph is only
//     available as repeated passes over an arbitrarily-ordered edge list,
//     and random walks are advanced one step per pass.
//   - Incremental Personalized PageRank on a dynamically-evolving graph,
//     after Bahmani, Chowdhury and Goel (VLDB 2010, reference [6]): a
//     reservoir of Monte Carlo walk paths is maintained and only the
//     affected suffixes are redrawn when an edge arrives or departs.
//   - Batch Personalized PageRank for many sources with a worker pool,
//     after Bahmani, Chakrabarti and Xin (SIGMOD 2011, reference [5]);
//     goroutines over node shards stand in for MapReduce workers (the
//     substitution is recorded in DESIGN.md).
//
// All three compute approximations whose error is controlled by a budget
// (number of walks, reservoir size, push tolerance) rather than by a
// convergence criterion — which is exactly the regime in which the paper
// argues approximation acts as regularization.
package stream

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Edge is one undirected edge observation in a stream.
type Edge struct {
	U, V int
	W    float64
}

// EdgeStream yields the edges of a graph in a fixed but arbitrary order,
// one full pass at a time. Implementations must return every edge exactly
// once per pass.
type EdgeStream interface {
	// Pass calls fn for every edge in the stream once.
	Pass(fn func(Edge)) error
	// Nodes returns the number of nodes in the streamed graph.
	Nodes() int
}

// SliceStream is an EdgeStream over an in-memory edge slice. It is the
// reference implementation used by tests and examples; any source that can
// replay its edges (a log file, a table scan) satisfies EdgeStream the
// same way.
type SliceStream struct {
	N     int
	Edges []Edge
}

// Pass replays the edge slice.
func (s *SliceStream) Pass(fn func(Edge)) error {
	for _, e := range s.Edges {
		fn(e)
	}
	return nil
}

// Nodes returns the node count.
func (s *SliceStream) Nodes() int { return s.N }

// StreamOf converts a built graph into a SliceStream, shuffling the edge
// order with rng (a stream has no useful order) unless rng is nil.
func StreamOf(g *graph.Graph, rng *rand.Rand) *SliceStream {
	var edges []Edge
	g.Edges(func(u, v int, w float64) {
		edges = append(edges, Edge{U: u, V: v, W: w})
	})
	if rng != nil {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	}
	return &SliceStream{N: g.N(), Edges: edges}
}

// PageRankOptions configures the streaming estimator.
type PageRankOptions struct {
	// Walks is the number of Monte Carlo walks (per seed for personalized,
	// total for global). More walks reduce variance; the standard error of
	// each coordinate scales as 1/sqrt(Walks). Defaults to 4096.
	Walks int
	// Gamma is the teleportation parameter of Eq. (2) in the paper: at
	// each step a walk stops with probability Gamma. Defaults to 0.15.
	Gamma float64
	// MaxSteps caps walk lengths (and therefore stream passes). Walks
	// still active at the cap are terminated where they stand, biasing
	// long-range mass slightly toward the seed — the same early-stopping
	// regularization the paper discusses. Defaults to 64.
	MaxSteps int
	// Seeds, when nonempty, makes the estimate a Personalized PageRank
	// from the uniform distribution over Seeds. When empty the walks start
	// uniformly at random over all nodes (global PageRank).
	Seeds []int
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Walks == 0 {
		o.Walks = 4096
	}
	if o.Gamma == 0 {
		o.Gamma = 0.15
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 64
	}
	return o
}

// PageRankResult is the output of StreamPageRank.
type PageRankResult struct {
	// Scores is the estimated PageRank distribution (sums to 1).
	Scores []float64
	// Passes is the number of passes made over the edge stream.
	Passes int
	// WalksCapped counts walks that hit MaxSteps before teleporting.
	WalksCapped int
}

// StreamPageRank estimates the PageRank distribution of a streamed graph
// with Monte Carlo walks advanced in lockstep: every pass over the stream
// advances every active walk by one step, using per-walk reservoir
// sampling over the incident edges seen during the pass. A walk stops with
// probability gamma per step; the empirical distribution of walk
// endpoints is the estimator (endpoint form of the Monte Carlo PageRank
// identity: pr_γ(v) = Pr[geometric-length walk ends at v]).
//
// The pass structure — not the walk structure — is the point: the graph is
// never random-access, matching the stream model of reference [37].
func StreamPageRank(s EdgeStream, opt PageRankOptions, rng *rand.Rand) (*PageRankResult, error) {
	n := s.Nodes()
	if n <= 0 {
		return nil, errors.New("stream: empty graph")
	}
	opt = opt.withDefaults()
	if opt.Gamma <= 0 || opt.Gamma >= 1 {
		return nil, fmt.Errorf("stream: gamma=%v outside (0,1)", opt.Gamma)
	}
	if opt.Walks <= 0 {
		return nil, fmt.Errorf("stream: walks=%d must be positive", opt.Walks)
	}
	for _, u := range opt.Seeds {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("stream: seed %d out of range [0,%d)", u, n)
		}
	}

	// pos[i] is walk i's current node; done[i] marks teleported walks.
	pos := make([]int32, opt.Walks)
	done := make([]bool, opt.Walks)
	for i := range pos {
		if len(opt.Seeds) > 0 {
			pos[i] = int32(opt.Seeds[rng.Intn(len(opt.Seeds))])
		} else {
			pos[i] = int32(rng.Intn(n))
		}
	}

	// walksAt[v] lists active walk ids currently at node v; rebuilt once
	// per pass. Reservoir state per active walk: total incident edge
	// weight seen so far and the currently-chosen next node, giving each
	// neighbor probability proportional to its edge weight (the natural
	// random-walk kernel M = AD^{-1}).
	walksAt := make([][]int32, n)
	totW := make([]float64, opt.Walks)
	next := make([]int32, opt.Walks)

	passes := 0
	active := opt.Walks
	for step := 0; step < opt.MaxSteps && active > 0; step++ {
		// Teleport lottery happens before the move so that a walk's
		// length is Geometric(gamma) in steps taken.
		for i := range pos {
			if !done[i] && rng.Float64() < opt.Gamma {
				done[i] = true
				active--
			}
		}
		if active == 0 {
			break
		}
		for v := range walksAt {
			walksAt[v] = walksAt[v][:0]
		}
		for i := range pos {
			if !done[i] {
				walksAt[pos[i]] = append(walksAt[pos[i]], int32(i))
				totW[i] = 0
				next[i] = pos[i] // dangling fallback: stay put
			}
		}
		err := s.Pass(func(e Edge) {
			if e.W <= 0 {
				return
			}
			// An undirected edge is incident to walks at both endpoints.
			for _, w := range walksAt[e.U] {
				totW[w] += e.W
				if rng.Float64() < e.W/totW[w] {
					next[w] = int32(e.V)
				}
			}
			for _, w := range walksAt[e.V] {
				totW[w] += e.W
				if rng.Float64() < e.W/totW[w] {
					next[w] = int32(e.U)
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("stream: pass %d: %w", passes, err)
		}
		passes++
		for i := range pos {
			if !done[i] {
				pos[i] = next[i]
			}
		}
	}

	capped := 0
	scores := make([]float64, n)
	w := 1 / float64(opt.Walks)
	for i := range pos {
		if !done[i] {
			capped++
		}
		scores[pos[i]] += w
	}
	return &PageRankResult{Scores: scores, Passes: passes, WalksCapped: capped}, nil
}

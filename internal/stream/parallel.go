package stream

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/kernel"
	"repro/internal/local"
	"repro/internal/par"
)

// BatchPPROptions configures BatchPersonalizedPageRank.
type BatchPPROptions struct {
	// Alpha is the push algorithm's teleportation parameter. Defaults to
	// 0.15.
	Alpha float64
	// Eps is the push tolerance; per-source work is O(1/(Eps·Alpha)).
	// Defaults to 1e-4.
	Eps float64
	// Workers is the number of concurrent workers. Defaults to
	// runtime.NumCPU().
	Workers int
}

func (o BatchPPROptions) withDefaults() BatchPPROptions {
	if o.Alpha == 0 {
		o.Alpha = 0.15
	}
	if o.Eps == 0 {
		o.Eps = 1e-4
	}
	o.Workers = par.Workers(o.Workers)
	return o
}

// BatchPPRResult holds per-source approximate PPR vectors.
type BatchPPRResult struct {
	// Vectors[i] is the sparse approximate PPR vector of Sources[i].
	Vectors []local.SparseVec
	// Sources echoes the requested sources, in order.
	Sources []int
	// TotalWork is Σ deg(u) over all push operations across all sources,
	// the aggregate cost measure.
	TotalWork float64
}

// BatchPersonalizedPageRank computes approximate Personalized PageRank
// vectors for many sources concurrently, the all-pairs primitive of
// reference [5] ("fast personalized PageRank on MapReduce"). It is a
// thin veneer over kernel.BatchDiffuser — the repo's single batch code
// path — which blocks sources against shared CSR row windows and runs
// blocks across par workers; the per-source computation (one ACL push)
// touches only O(1/(ε·α)) volume, so the aggregate cost is linear in
// the number of sources, independent of n.
//
// The output is deterministic: identical to running the push sequentially
// per source, whatever the worker count or block schedule.
func BatchPersonalizedPageRank(g *graph.Graph, sources []int, opt BatchPPROptions) (*BatchPPRResult, error) {
	return BatchPersonalizedPageRankCtx(context.Background(), g, sources, opt)
}

// BatchPersonalizedPageRankCtx is BatchPersonalizedPageRank with
// cooperative cancellation between seed blocks.
func BatchPersonalizedPageRankCtx(ctx context.Context, g *graph.Graph, sources []int, opt BatchPPROptions) (*BatchPPRResult, error) {
	opt = opt.withDefaults()
	if len(sources) == 0 {
		return nil, fmt.Errorf("stream: no sources")
	}
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("stream: source %d out of range [0,%d)", s, g.N())
		}
	}

	res := &BatchPPRResult{
		Vectors: make([]local.SparseVec, len(sources)),
		Sources: append([]int(nil), sources...),
	}
	// The engine pools the workspaces, so a batch over thousands of
	// sources keeps at most Workers·Block workspaces live; only the
	// returned per-source snapshots allocate.
	work := make([]float64, len(sources))
	pool := kernel.NewPool(g.N())
	bd := kernel.BatchDiffuser{
		Method:  kernel.PushACL{Alpha: opt.Alpha, Eps: opt.Eps},
		Workers: opt.Workers,
	}
	_, err := bd.Run(ctx, gstore.Wrap(g), pool, sources, func(i int, ws *kernel.Workspace, st kernel.Stats) error {
		res.Vectors[i] = local.FromWorkspaceP(ws)
		work[i] = st.WorkVolume
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("stream: batch ppr: %w", err)
	}
	for _, w := range work {
		res.TotalWork += w
	}
	return res, nil
}

// TopK returns the k highest-scoring nodes of a sparse vector in
// descending score order (ties broken by node id for determinism).
func TopK(v local.SparseVec, k int) []int {
	ids := v.Support() // sorted by id
	if k > len(ids) {
		k = len(ids)
	}
	// Push supports are O(1/εα), so a full sort is cheap.
	ordered := append([]int(nil), ids...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if v[a] != v[b] {
			return v[a] > v[b]
		}
		return a < b
	})
	return ordered[:k]
}

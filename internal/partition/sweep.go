// Package partition implements the graph partitioning algorithms of
// §3.2: the spectral partitioner (Fiedler vector + sweep cut, with its
// quadratic Cheeger guarantee), a multilevel "Metis-like" partitioner
// (heavy-edge matching coarsening + greedy initial cut + FM refinement),
// the Metis+MQI flow pipeline that Figure 1 uses as its flow-based
// method, and naive baselines.
package partition

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/gstore"
)

// SweepResult is the best prefix cut found by a sweep over an embedding.
type SweepResult struct {
	Set         []int   // nodes of the best sweep set (smaller-volume side not guaranteed)
	Conductance float64 // φ of that set
	Prefix      int     // number of nodes in the prefix
}

// SweepCut sorts nodes by the embedding values (descending) and returns
// the best-conductance prefix set. This is the rounding step shared by
// every spectral method in the paper: relax, embed on a line, cut.
//
// The incremental evaluation makes the whole sweep O(m + n log n).
func SweepCut(g *graph.Graph, embedding []float64) (*SweepResult, error) {
	n := g.N()
	if len(embedding) != n {
		return nil, fmt.Errorf("partition: embedding length %d != %d nodes", len(embedding), n)
	}
	if n < 2 {
		return nil, errors.New("partition: sweep cut needs at least 2 nodes")
	}
	return sweepOverOrder(gstore.Wrap(g), embeddingOrder(embedding), n-1)
}

// embeddingOrder returns all nodes sorted by embedding value descending,
// with node id as an explicit tiebreak: equal scores always sweep in
// ascending-id order, so the sweep output can never depend on the sort
// algorithm's treatment of ties (sort.Slice is not stable) or on the
// floating-point provenance of the embedding.
func embeddingOrder(embedding []float64) []int {
	order := make([]int, len(embedding))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := embedding[order[a]], embedding[order[b]]
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	return order
}

// SweepCutPrefix is SweepCut restricted to prefixes of at most maxPrefix
// nodes, used by the locally-biased methods of §3.3 to keep the output
// near the seed.
func SweepCutPrefix(g *graph.Graph, embedding []float64, maxPrefix int) (*SweepResult, error) {
	n := g.N()
	if len(embedding) != n {
		return nil, fmt.Errorf("partition: embedding length %d != %d nodes", len(embedding), n)
	}
	if maxPrefix < 1 {
		return nil, fmt.Errorf("partition: maxPrefix=%d must be >= 1", maxPrefix)
	}
	if maxPrefix > n-1 {
		maxPrefix = n - 1
	}
	return sweepOverOrder(gstore.Wrap(g), embeddingOrder(embedding), maxPrefix)
}

// SweepCutOrdered runs the sweep over an explicit node order (e.g. the
// support of a sparse diffusion vector sorted by probability-per-degree).
// Only the first maxPrefix prefixes are considered. It accepts any
// storage backend: the per-query sweep path serves compact and mapped
// graphs without materializing a heap copy.
func SweepCutOrdered(g gstore.Graph, order []int, maxPrefix int) (*SweepResult, error) {
	if len(order) == 0 {
		return nil, errors.New("partition: empty sweep order")
	}
	// Support-sized map, not a []bool: the order is typically a small
	// diffusion support and this path runs per query (and per Nibble
	// step), so the dup check must stay O(len(order)), not O(n).
	seen := make(map[int]bool, len(order))
	for _, u := range order {
		if u < 0 || u >= g.N() {
			return nil, fmt.Errorf("partition: sweep node %d out of range [0,%d)", u, g.N())
		}
		if seen[u] {
			return nil, fmt.Errorf("partition: duplicate node %d in sweep order", u)
		}
		seen[u] = true
	}
	if maxPrefix > len(order) {
		maxPrefix = len(order)
	}
	if maxPrefix > g.N()-1 {
		maxPrefix = g.N() - 1
	}
	if maxPrefix < 1 {
		return nil, errors.New("partition: nothing to sweep")
	}
	return sweepOverOrder(g, order, maxPrefix)
}

func sweepOverOrder(g gstore.Graph, order []int, maxPrefix int) (*SweepResult, error) {
	inS := make([]bool, g.N())
	var cut, volS float64
	volume := g.Volume()
	best := math.Inf(1)
	bestPrefix := 0
	for k := 0; k < maxPrefix; k++ {
		u := order[k]
		// Adding u: its edges to S stop being cut edges; edges to the
		// complement become cut edges. The iterator walks the row in
		// CSR order, so the float accumulation matches the heap path.
		it := g.Neighbors(u)
		for v, w, ok := it.Next(); ok; v, w, ok = it.Next() {
			if inS[v] {
				cut -= w
			} else {
				cut += w
			}
		}
		inS[u] = true
		volS += g.Degree(u)
		denom := math.Min(volS, volume-volS)
		if denom <= 0 {
			continue
		}
		if phi := cut / denom; phi < best {
			best = phi
			bestPrefix = k + 1
		}
	}
	if bestPrefix == 0 {
		return nil, errors.New("partition: sweep found no valid cut")
	}
	set := make([]int, bestPrefix)
	copy(set, order[:bestPrefix])
	return &SweepResult{Set: set, Conductance: best, Prefix: bestPrefix}, nil
}

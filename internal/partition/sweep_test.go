package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// TestSweepCutTieBreakDeterministic locks the explicit tie-breaking of
// the embedding sweep: equal scores always sweep in ascending node id
// order, so an all-equal embedding must yield the prefix {0..k-1} and
// repeated runs (and permuted duplicate values) can never reorder the
// output. This is the guard that keeps engine-order changes upstream
// (diffusion rewrites, solver swaps) from silently reshuffling sweep
// results through sort.Slice's unstable treatment of ties.
func TestSweepCutTieBreakDeterministic(t *testing.T) {
	g := gen.RingOfCliques(4, 5)
	n := g.N()

	// All-equal embedding: the order must be 0,1,2,...,n-1, so the best
	// set is a prefix of ascending ids.
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = 0.25
	}
	first, err := SweepCut(g, flat)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range first.Set {
		if u != i {
			t.Fatalf("tied sweep set not an ascending-id prefix: set[%d]=%d", i, u)
		}
	}
	for run := 0; run < 10; run++ {
		again, err := SweepCut(g, flat)
		if err != nil {
			t.Fatal(err)
		}
		if again.Prefix != first.Prefix || again.Conductance != first.Conductance {
			t.Fatalf("run %d: sweep drifted: (k=%d,φ=%v) vs (k=%d,φ=%v)",
				run, again.Prefix, again.Conductance, first.Prefix, first.Conductance)
		}
		for i := range first.Set {
			if again.Set[i] != first.Set[i] {
				t.Fatalf("run %d: tied sweep order changed at %d", run, i)
			}
		}
	}

	// Two-level embedding with a large tied plateau: within each level
	// the order must still be ascending by id.
	two := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	var high []int
	for _, u := range rng.Perm(n)[:n/2] {
		two[u] = 1
		high = append(high, u)
	}
	res, err := SweepCut(g, two)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	level := 2.0
	for _, u := range res.Set {
		if two[u] == level {
			if u < prev {
				t.Fatalf("tie within level %g not in ascending id order: %d after %d", level, u, prev)
			}
		} else if two[u] > level {
			t.Fatalf("sweep order not descending by value at node %d", u)
		} else {
			level = two[u]
			prev = -1
		}
		prev = u
	}

	// SweepCutPrefix shares the same ordering contract.
	pfx, err := SweepCutPrefix(g, flat, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range pfx.Set {
		if u != i {
			t.Fatalf("SweepCutPrefix tied set not ascending prefix: set[%d]=%d", i, u)
		}
	}
}

package partition

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/spectral"
	"repro/internal/vec"
)

// SpectralEmbedding computes the k-dimensional spectral embedding of g:
// row i holds node i's coordinates on the k leading nontrivial
// generalized eigenvectors of the normalized Laplacian (the D^{-1/2}v
// coordinates whose sweep realizes Cheeger). It is the multi-eigenvector
// generalization of the Fiedler embedding — the standard substrate for
// k-way spectral clustering and for the "eigenvector-based analytics"
// Section 3.3 wants to run at scale.
func SpectralEmbedding(g *graph.Graph, k int) ([][]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: embedding dimension %d must be positive", k)
	}
	if k >= g.N() {
		return nil, fmt.Errorf("partition: embedding dimension %d must be below n=%d", k, g.N())
	}
	if !g.IsConnected() {
		return nil, errors.New("partition: spectral embedding needs a connected graph")
	}
	lap := spectral.NormalizedLaplacian(g)
	// One eigenpair per Lanczos run, deflating everything found so far: a
	// single-vector Krylov space cannot resolve eigenvalue multiplicity
	// (planted structures like caveman graphs have degenerate cave
	// modes), but sequential deflation recovers each copy.
	deflate := [][]float64{spectral.TrivialEigvec(g)}
	vectors := make([][]float64, 0, k)
	for j := 0; j < k; j++ {
		res, err := spectral.LanczosSmallest(lap, 1, spectral.LanczosOptions{
			Deflate: deflate,
			Seed:    int64(j) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("partition: embedding eigensolve %d/%d: %w", j+1, k, err)
		}
		if len(res.Vectors) < 1 {
			return nil, fmt.Errorf("partition: eigensolver returned no vector at %d/%d", j+1, k)
		}
		vectors = append(vectors, res.Vectors[0])
		deflate = append(deflate, res.Vectors[0])
	}
	deg := g.Degrees()
	coords := make([][]float64, g.N())
	for i := range coords {
		coords[i] = make([]float64, k)
	}
	for j := 0; j < k; j++ {
		// Generalized eigenvector coordinates y = D^{-1/2}x.
		y := vec.ScaleByDegree(vectors[j], deg, -0.5)
		for i := range coords {
			coords[i][j] = y[i]
		}
	}
	return coords, nil
}

// KMeans runs Lloyd's algorithm on the points with k-means++-style
// seeding from rng, returning a cluster label per point. It is the
// rounding step of k-way spectral clustering; deterministic given rng.
func KMeans(points [][]float64, k int, maxIter int, rng *rand.Rand) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("partition: kmeans on empty point set")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("partition: kmeans k=%d out of range [1,%d]", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("partition: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	dist2 := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}

	// k-means++ seeding: first center uniform, then proportional to the
	// squared distance to the nearest chosen center.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(points[i], centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range minD {
			total += d
		}
		var next int
		if total == 0 {
			next = rng.Intn(n) // all points coincide with a center
		} else {
			x := rng.Float64() * total
			for i, d := range minD {
				x -= d
				if x <= 0 {
					next = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[next]...))
		for i := range minD {
			if d := dist2(points[i], centers[len(centers)-1]); d < minD[i] {
				minD[i] = d
			}
		}
	}

	labels := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := dist2(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centers {
			counts[c] = 0
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j := range p {
				centers[c][j] += p[j]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Empty cluster: re-seed at the point farthest from its
				// center, the standard Lloyd repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := dist2(p, centers[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], points[far])
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	return labels, nil
}

// KWayResult is the outcome of k-way spectral clustering.
type KWayResult struct {
	// Labels assigns each node a cluster in [0, k).
	Labels []int
	// Phis holds the conductance of each cluster.
	Phis []float64
	// MaxPhi is the worst cluster conductance (the k-way quality score).
	MaxPhi float64
}

// SpectralKWay partitions g into k clusters by embedding the nodes on the
// k leading nontrivial generalized eigenvectors and clustering the
// embedded points with k-means. Compared with RecursiveBisect (cut-driven,
// flow-refinable) this is the "geometry-first" k-way method: it inherits
// the spectral method's regularization artifacts — compact, round
// clusters — rather than optimizing conductance directly.
func SpectralKWay(g *graph.Graph, k int, rng *rand.Rand) (*KWayResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("partition: k=%d must be at least 2", k)
	}
	coords, err := SpectralEmbedding(g, k)
	if err != nil {
		return nil, err
	}
	labels, err := KMeans(coords, k, 0, rng)
	if err != nil {
		return nil, err
	}
	res := &KWayResult{Labels: labels, Phis: make([]float64, k)}
	for c := 0; c < k; c++ {
		inS := make([]bool, g.N())
		any := false
		for u, l := range labels {
			if l == c {
				inS[u] = true
				any = true
			}
		}
		if !any {
			res.Phis[c] = math.NaN()
			continue
		}
		res.Phis[c] = g.Conductance(inS)
		if res.Phis[c] > res.MaxPhi {
			res.MaxPhi = res.Phis[c]
		}
	}
	return res, nil
}

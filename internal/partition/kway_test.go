package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestSpectralEmbeddingDimensionsAndValidation(t *testing.T) {
	g := gen.Caveman(3, 6)
	coords, err := SpectralEmbedding(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != g.N() || len(coords[0]) != 3 {
		t.Fatalf("embedding is %dx%d, want %dx3", len(coords), len(coords[0]), g.N())
	}
	if _, err := SpectralEmbedding(g, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := SpectralEmbedding(g, g.N()); err == nil {
		t.Error("k=n should error")
	}
}

func TestSpectralEmbeddingSeparatesCaves(t *testing.T) {
	// On a caveman graph the first embedding coordinates are near-constant
	// within each cave: intra-cave distances must be far smaller than
	// inter-cave ones.
	g := gen.Caveman(3, 8)
	coords, err := SpectralEmbedding(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b int) float64 {
		var s float64
		for j := range coords[a] {
			d := coords[a][j] - coords[b][j]
			s += d * d
		}
		return math.Sqrt(s)
	}
	intra := dist(1, 2) + dist(9, 10) + dist(17, 18)
	inter := dist(1, 9) + dist(9, 17) + dist(1, 17)
	if intra*3 > inter {
		t.Errorf("embedding does not separate caves: intra %g vs inter %g", intra, inter)
	}
}

func TestKMeansRecoversWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	var want []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				ctr[0] + rng.NormFloat64()*0.2,
				ctr[1] + rng.NormFloat64()*0.2,
			})
			want = append(want, c)
		}
	}
	labels, err := KMeans(points, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are a permutation of the planted ones: check pairwise
	// co-membership instead of raw labels.
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			same := labels[i] == labels[j]
			if same != (want[i] == want[j]) {
				t.Fatalf("points %d,%d co-membership wrong", i, j)
			}
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := KMeans(nil, 2, 0, rng); err == nil {
		t.Error("empty points should error")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 3, 0, rng); err == nil {
		t.Error("k > n should error")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, 0, rng); err == nil {
		t.Error("ragged points should error")
	}
}

func TestKMeansDegenerateIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels, err := KMeans(pts, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatal("wrong label count")
	}
}

func TestSpectralKWayRecoversCaveman(t *testing.T) {
	g := gen.Caveman(4, 8)
	rng := rand.New(rand.NewSource(4))
	res, err := SpectralKWay(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every cave must be label-pure.
	for cave := 0; cave < 4; cave++ {
		label := res.Labels[cave*8]
		for u := cave * 8; u < (cave+1)*8; u++ {
			if res.Labels[u] != label {
				t.Fatalf("cave %d split across clusters", cave)
			}
		}
	}
	// Caveman caves connect to the ring through rewired edges; each cave
	// cluster has conductance well under the clique scale.
	if res.MaxPhi > 0.2 {
		t.Errorf("max cluster conductance %g too high for planted caves", res.MaxPhi)
	}
}

func TestSpectralKWayValidation(t *testing.T) {
	g := gen.Caveman(3, 5)
	rng := rand.New(rand.NewSource(5))
	if _, err := SpectralKWay(g, 1, rng); err == nil {
		t.Error("k=1 should error")
	}
}

// TestSpectralKWayPropertyPartition: labels always form a full partition
// with every label in range and no empty cluster reported as finite φ.
func TestSpectralKWayPropertyPartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		g := gen.Caveman(k, 5+rng.Intn(5))
		res, err := SpectralKWay(g, k, rng)
		if err != nil {
			return false
		}
		if len(res.Labels) != g.N() {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
		}
		for _, phi := range res.Phis {
			if !math.IsNaN(phi) && (phi < 0 || phi > 1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSpectralKWayVsRecursiveBisect(t *testing.T) {
	// The two k-way methods must both recover planted structure; the
	// flow-refinable recursive bisection may differ in labels but not in
	// quality class.
	g := gen.Caveman(4, 8)
	rng := rand.New(rand.NewSource(6))
	spec, err := SpectralKWay(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := RecursiveBisect(g, 4, MultilevelOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	maxPhiRB := 0.0
	for c := 0; c < 4; c++ {
		inS := make([]bool, g.N())
		any := false
		for u, l := range labels {
			if l == c {
				inS[u] = true
				any = true
			}
		}
		if !any {
			continue
		}
		if phi := g.Conductance(inS); phi > maxPhiRB {
			maxPhiRB = phi
		}
	}
	if spec.MaxPhi > 3*maxPhiRB+0.05 && maxPhiRB > 0 {
		t.Errorf("spectral k-way φ=%.3f far worse than recursive bisect φ=%.3f", spec.MaxPhi, maxPhiRB)
	}
}

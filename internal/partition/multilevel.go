package partition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/flow"
	"repro/internal/graph"
)

// MultilevelOptions configures the multilevel bisection.
type MultilevelOptions struct {
	// CoarsestSize stops coarsening once the graph has at most this many
	// nodes (default 40).
	CoarsestSize int
	// BalanceFraction is the minimum fraction of total node weight each
	// side must keep (default 0.25).
	BalanceFraction float64
	// RefinePasses caps the FM refinement passes per level (default 8).
	RefinePasses int
	// Seed drives the randomized matching and initial partition (0 → 1).
	Seed int64
	// OnProgress, when set, is called by RecursiveBisect(Ctx) after each
	// completed split with (splits done, splits planned); a k-way
	// partition plans k-1 splits. Single bisections never call it. The
	// hook must be cheap and must not panic; it has no effect on the
	// partition itself.
	OnProgress func(done, total int)
}

func (o *MultilevelOptions) withDefaults() MultilevelOptions {
	out := *o
	if out.CoarsestSize <= 1 {
		out.CoarsestSize = 40
	}
	if out.BalanceFraction <= 0 || out.BalanceFraction >= 0.5 {
		out.BalanceFraction = 0.25
	}
	if out.RefinePasses <= 0 {
		out.RefinePasses = 8
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// MultilevelResult is a bisection produced by the multilevel partitioner.
type MultilevelResult struct {
	InS         []bool  // membership of side S
	CutWeight   float64 // total weight of cut edges
	Conductance float64 // φ of the bisection
	Levels      int     // number of coarsening levels used
}

// level is one rung of the coarsening hierarchy.
type level struct {
	g       *graph.Graph
	nodeW   []float64 // node weights (number of original nodes merged in)
	coarser []int     // map from this level's nodes to the coarser level's
}

// MultilevelBisect runs the Metis-style multilevel heuristic: coarsen by
// heavy-edge matching, cut the coarsest graph greedily, then uncoarsen
// with Fiduccia–Mattheyses boundary refinement at every level. It is the
// stand-in for Metis in the paper's "Metis+MQI" flow-based pipeline (see
// DESIGN.md's substitution table).
func MultilevelBisect(g *graph.Graph, opt MultilevelOptions) (*MultilevelResult, error) {
	o := (&opt).withDefaults()
	if g.N() < 2 {
		return nil, errors.New("partition: multilevel bisect needs at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Build the hierarchy.
	levels := []*level{{g: g, nodeW: ones(g.N())}}
	for {
		cur := levels[len(levels)-1]
		if cur.g.N() <= o.CoarsestSize {
			break
		}
		next, mapping, ok := coarsen(cur, rng)
		if !ok {
			break // matching made no progress (e.g. star graphs)
		}
		cur.coarser = mapping
		levels = append(levels, next)
	}

	// Initial partition on the coarsest level.
	coarsest := levels[len(levels)-1]
	inS := greedyGrowBisect(coarsest, o.BalanceFraction, rng)

	// Uncoarsen with refinement.
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		refineFM(lv, inS, o.BalanceFraction, o.RefinePasses)
		if li > 0 {
			finer := levels[li-1]
			fine := make([]bool, finer.g.N())
			for u := 0; u < finer.g.N(); u++ {
				fine[u] = inS[finer.coarser[u]]
			}
			inS = fine
		}
	}
	cut := g.Cut(inS)
	return &MultilevelResult{
		InS:         inS,
		CutWeight:   cut,
		Conductance: g.Conductance(inS),
		Levels:      len(levels),
	}, nil
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// coarsen performs one heavy-edge-matching contraction. It returns the
// coarser level, the fine→coarse mapping, and whether the contraction
// reduced the node count.
func coarsen(lv *level, rng *rand.Rand) (*level, []int, bool) {
	g := lv.g
	n := g.N()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		nbrs, ws := g.Neighbors(u)
		best, bestW := -1, -1.0
		for i, v := range nbrs {
			if match[v] < 0 && v != u && ws[i] > bestW {
				best, bestW = v, ws[i]
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u // self-matched (stays single)
		}
	}
	// Assign coarse ids.
	coarseID := make([]int, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if coarseID[u] >= 0 {
			continue
		}
		coarseID[u] = next
		if match[u] != u {
			coarseID[match[u]] = next
		}
		next++
	}
	if next >= n {
		return nil, nil, false
	}
	b := graph.NewBuilder(next)
	nodeW := make([]float64, next)
	for u := 0; u < n; u++ {
		nodeW[coarseID[u]] += lv.nodeW[u]
	}
	g.Edges(func(u, v int, w float64) {
		cu, cv := coarseID[u], coarseID[v]
		if cu != cv {
			b.AddWeightedEdge(cu, cv, w)
		}
	})
	cg, err := b.Build()
	if err != nil {
		return nil, nil, false // cannot happen with valid ids; treated as no progress
	}
	return &level{g: cg, nodeW: nodeW}, coarseID, true
}

// greedyGrowBisect grows a region from a random node by repeatedly
// absorbing the frontier node with the highest connection-to-S weight
// until S holds roughly half the node weight.
func greedyGrowBisect(lv *level, balanceFrac float64, rng *rand.Rand) []bool {
	g := lv.g
	n := g.N()
	totalW := 0.0
	for _, w := range lv.nodeW {
		totalW += w
	}
	target := totalW / 2
	inS := make([]bool, n)
	gain := make([]float64, n)
	start := rng.Intn(n)
	inS[start] = true
	grown := lv.nodeW[start]
	nbrs, ws := g.Neighbors(start)
	for i, v := range nbrs {
		gain[v] += ws[i]
	}
	for grown < target {
		best, bestGain := -1, math.Inf(-1)
		for v := 0; v < n; v++ {
			if !inS[v] && gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 {
			break
		}
		if bestGain <= 0 {
			// Frontier exhausted (disconnected remainder): jump to any
			// unassigned node.
			for v := 0; v < n; v++ {
				if !inS[v] {
					best = v
					break
				}
			}
		}
		inS[best] = true
		grown += lv.nodeW[best]
		nbrs, ws := g.Neighbors(best)
		for i, v := range nbrs {
			gain[v] += ws[i]
		}
	}
	// Guard against degenerate all-in-S outcomes.
	count := 0
	for _, in := range inS {
		if in {
			count++
		}
	}
	if count == n {
		inS[rng.Intn(n)] = false
	}
	_ = balanceFrac
	return inS
}

// refineFM runs Fiduccia–Mattheyses-style passes: repeatedly move the
// boundary node with the best cut-weight gain to the other side, subject
// to the balance constraint, accepting the best prefix of moves per pass.
func refineFM(lv *level, inS []bool, balanceFrac float64, maxPasses int) {
	g := lv.g
	n := g.N()
	totalW := 0.0
	for _, w := range lv.nodeW {
		totalW += w
	}
	minSide := balanceFrac * totalW
	weightS := 0.0
	for u := 0; u < n; u++ {
		if inS[u] {
			weightS += lv.nodeW[u]
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		// gain[u] = (cut weight removed) − (cut weight added) if u moves.
		gain := make([]float64, n)
		for u := 0; u < n; u++ {
			nbrs, ws := g.Neighbors(u)
			for i, v := range nbrs {
				if inS[v] != inS[u] {
					gain[u] += ws[i]
				} else {
					gain[u] -= ws[i]
				}
			}
		}
		locked := make([]bool, n)
		type move struct {
			u        int
			cumGain  float64
			balanced bool
		}
		var moves []move
		var cum float64
		curWeightS := weightS
		for step := 0; step < n; step++ {
			best, bestGain := -1, math.Inf(-1)
			for u := 0; u < n; u++ {
				if !locked[u] && gain[u] > bestGain {
					best, bestGain = u, gain[u]
				}
			}
			if best < 0 {
				break
			}
			// Tentatively move best.
			locked[best] = true
			if inS[best] {
				curWeightS -= lv.nodeW[best]
			} else {
				curWeightS += lv.nodeW[best]
			}
			inS[best] = !inS[best]
			cum += bestGain
			balanced := curWeightS >= minSide && totalW-curWeightS >= minSide
			moves = append(moves, move{best, cum, balanced})
			// Update neighbor gains.
			nbrs, ws := g.Neighbors(best)
			for i, v := range nbrs {
				if locked[v] {
					continue
				}
				if inS[v] == inS[best] {
					gain[v] -= 2 * ws[i]
				} else {
					gain[v] += 2 * ws[i]
				}
			}
			gain[best] = -gain[best]
		}
		// Find the best balanced prefix with positive cumulative gain.
		bestPrefix, bestCum := 0, 0.0
		for i, m := range moves {
			if m.balanced && m.cumGain > bestCum+1e-12 {
				bestPrefix, bestCum = i+1, m.cumGain
			}
		}
		// Roll back moves beyond the chosen prefix.
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			u := moves[i].u
			inS[u] = !inS[u]
		}
		// Recompute weightS.
		weightS = 0
		for u := 0; u < n; u++ {
			if inS[u] {
				weightS += lv.nodeW[u]
			}
		}
		if bestPrefix == 0 {
			return // no improving balanced prefix: converged
		}
	}
}

// MetisMQI runs the paper's flow-based pipeline: multilevel bisection
// followed by MQI improvement of the smaller side. This is the "red"
// algorithm of Figure 1.
func MetisMQI(g *graph.Graph, opt MultilevelOptions) (*flow.MQIResult, error) {
	bi, err := MultilevelBisect(g, opt)
	if err != nil {
		return nil, fmt.Errorf("partition: MetisMQI bisect: %w", err)
	}
	res, err := flow.ImproveBothSides(g, bi.InS)
	if err != nil {
		return nil, fmt.Errorf("partition: MetisMQI improve: %w", err)
	}
	return res, nil
}

// RecursiveBisect partitions the graph into k parts by recursive
// multilevel bisection, splitting the largest remaining part each round.
// It returns a part label per node.
func RecursiveBisect(g *graph.Graph, k int, opt MultilevelOptions) ([]int, error) {
	return RecursiveBisectCtx(context.Background(), g, k, opt)
}

// RecursiveBisectCtx is RecursiveBisect with cooperative cancellation:
// ctx is checked before every split, so a long k-way partition driven
// from a serving layer can be cancelled between bisections.
func RecursiveBisectCtx(ctx context.Context, g *graph.Graph, k int, opt MultilevelOptions) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k=%d must be >= 1", k)
	}
	labels := make([]int, g.N())
	if k == 1 {
		return labels, nil
	}
	type part struct {
		nodes []int
	}
	parts := []part{{nodes: allNodes(g.N())}}
	seed := (&opt).withDefaults().Seed
	for len(parts) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Split the largest part.
		idx := 0
		for i := range parts {
			if len(parts[i].nodes) > len(parts[idx].nodes) {
				idx = i
			}
		}
		p := parts[idx]
		if len(p.nodes) < 2 {
			break
		}
		sg, mapping, err := g.Subgraph(p.nodes)
		if err != nil {
			return nil, fmt.Errorf("partition: RecursiveBisect subgraph: %w", err)
		}
		seed++
		sub := opt
		sub.Seed = seed
		bi, err := MultilevelBisect(sg, sub)
		if err != nil {
			return nil, fmt.Errorf("partition: RecursiveBisect split: %w", err)
		}
		var a, b []int
		for i, in := range bi.InS {
			if in {
				a = append(a, mapping[i])
			} else {
				b = append(b, mapping[i])
			}
		}
		if len(a) == 0 || len(b) == 0 {
			break // unsplittable (e.g. singleton); stop early
		}
		parts[idx] = part{nodes: a}
		parts = append(parts, part{nodes: b})
		if opt.OnProgress != nil {
			opt.OnProgress(len(parts)-1, k-1)
		}
	}
	for label, p := range parts {
		for _, u := range p.nodes {
			labels[u] = label
		}
	}
	return labels, nil
}

func allNodes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// PartSets converts part labels into explicit node lists, sorted by part
// id.
func PartSets(labels []int) [][]int {
	maxL := -1
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	sets := make([][]int, maxL+1)
	for u, l := range labels {
		sets[l] = append(sets[l], u)
	}
	for _, s := range sets {
		sort.Ints(s)
	}
	return sets
}

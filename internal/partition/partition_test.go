package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/spectral"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSweepCutDumbbell(t *testing.T) {
	// Embedding that separates the two cliques perfectly must recover the
	// bridge cut.
	g := gen.Dumbbell(5, 0)
	emb := make([]float64, 10)
	for u := 0; u < 5; u++ {
		emb[u] = 1
	}
	res, err := SweepCut(g, emb)
	if err != nil {
		t.Fatal(err)
	}
	want := g.ConductanceOfSet([]int{0, 1, 2, 3, 4})
	if !almostEq(res.Conductance, want, 1e-12) {
		t.Fatalf("sweep φ = %v, want %v", res.Conductance, want)
	}
	if res.Prefix != 5 {
		t.Fatalf("prefix = %d, want 5", res.Prefix)
	}
}

func TestSweepCutMatchesBruteForcePrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ErdosRenyi(15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	emb := make([]float64, 15)
	for i := range emb {
		emb[i] = rng.NormFloat64()
	}
	res, err := SweepCut(g, emb)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over prefixes of the sorted order.
	order := make([]int, 15)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			if emb[order[j]] > emb[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	best := math.Inf(1)
	for k := 1; k < 15; k++ {
		phi := g.ConductanceOfSet(order[:k])
		if phi < best {
			best = phi
		}
	}
	if !almostEq(res.Conductance, best, 1e-9) {
		t.Fatalf("incremental sweep φ = %v, brute force %v", res.Conductance, best)
	}
}

func TestSweepCutErrors(t *testing.T) {
	g := gen.Path(4)
	if _, err := SweepCut(g, []float64{1, 2}); err == nil {
		t.Fatal("bad embedding length accepted")
	}
	if _, err := SweepCut(gen.Path(1), []float64{1}); err == nil {
		t.Fatal("single node accepted")
	}
	if _, err := SweepCutOrdered(gstore.Wrap(g), []int{0, 0}, 2); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := SweepCutOrdered(gstore.Wrap(g), []int{7}, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := SweepCutOrdered(gstore.Wrap(g), nil, 3); err == nil {
		t.Fatal("empty order accepted")
	}
}

func TestSweepCutPrefixCap(t *testing.T) {
	g := gen.RingOfCliques(4, 5)
	emb := make([]float64, g.N())
	for i := range emb {
		emb[i] = float64(g.N() - i)
	}
	res, err := SweepCutPrefix(g, emb, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefix > 5 {
		t.Fatalf("prefix %d exceeds cap 5", res.Prefix)
	}
}

func TestSpectralDumbbell(t *testing.T) {
	g := gen.Dumbbell(8, 0)
	res, err := Spectral(g, spectral.FiedlerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal cut: one clique; φ = 1/(8·7+1) = 1/57.
	if !almostEq(res.Conductance, 1.0/57, 1e-9) {
		t.Fatalf("spectral φ = %v, want 1/57", res.Conductance)
	}
	if len(res.Set) != 8 {
		t.Fatalf("spectral side size = %d, want 8", len(res.Set))
	}
}

func TestSpectralSatisfiesCheeger(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Dumbbell(6, 3), gen.RingOfCliques(5, 4), gen.Lollipop(8, 20), gen.Grid(6, 8),
	} {
		res, err := Spectral(g, spectral.FiedlerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Conductance > res.CheegerUpper+1e-9 {
			t.Errorf("sweep φ = %v exceeds Cheeger bound √(2λ₂) = %v", res.Conductance, res.CheegerUpper)
		}
		if lower := res.Lambda2 / 2; res.Conductance < lower-1e-9 {
			t.Errorf("sweep φ = %v below λ₂/2 = %v (impossible)", res.Conductance, lower)
		}
	}
}

func TestMultilevelBisectDumbbell(t *testing.T) {
	g := gen.Dumbbell(10, 0)
	res, err := MultilevelBisect(g, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.CutWeight, 1, 1e-9) {
		t.Fatalf("multilevel cut = %v, want 1 (the bridge)", res.CutWeight)
	}
}

func TestMultilevelBisectBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := gen.ErdosRenyi(300, 0.03, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultilevelBisect(g, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, in := range res.InS {
		if in {
			count++
		}
	}
	if count < 60 || count > 240 {
		t.Fatalf("bisection badly unbalanced: |S| = %d of 300", count)
	}
	if res.Levels < 2 {
		t.Errorf("expected coarsening to engage, levels = %d", res.Levels)
	}
}

func TestMultilevelBeatsRandomCut(t *testing.T) {
	g := gen.RingOfCliques(8, 8)
	res, err := MultilevelBisect(g, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	set, err := RandomCut(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	phiRandom := g.ConductanceOfSet(set)
	if res.Conductance >= phiRandom {
		t.Fatalf("multilevel φ=%v not better than random φ=%v", res.Conductance, phiRandom)
	}
}

func TestMetisMQIPipeline(t *testing.T) {
	g := gen.Dumbbell(10, 4)
	res, err := MetisMQI(g, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline must find a cut at least as good as the one-clique cut.
	cliquePhi := g.ConductanceOfSet([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if res.Conductance > cliquePhi+1e-9 {
		t.Fatalf("Metis+MQI φ = %v, clique cut gives %v", res.Conductance, cliquePhi)
	}
}

func TestMetisMQINeverWorseThanBisect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ff, err := gen.ForestFire(gen.ForestFireConfig{N: 400, FwdProb: 0.35, Ambs: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := MultilevelBisect(ff, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mq, err := flow.ImproveBothSides(ff, bi.InS)
	if err != nil {
		t.Fatal(err)
	}
	if mq.Conductance > bi.Conductance+1e-9 {
		t.Fatalf("MQI worsened the bisection: %v -> %v", bi.Conductance, mq.Conductance)
	}
}

func TestRecursiveBisect(t *testing.T) {
	g := gen.RingOfCliques(4, 6)
	labels, err := RecursiveBisect(g, 4, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sets := PartSets(labels)
	if len(sets) != 4 {
		t.Fatalf("parts = %d, want 4", len(sets))
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total != g.N() {
		t.Fatalf("parts cover %d of %d nodes", total, g.N())
	}
	if _, err := RecursiveBisect(g, 0, MultilevelOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	one, err := RecursiveBisect(g, 1, MultilevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range one {
		if l != 0 {
			t.Fatal("k=1 should label everything 0")
		}
	}
}

func TestBFSGrowFindsWhisker(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := gen.WhiskeredExpander(60, 6, 4, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Growing from the whisker tip should find the whisker cut.
	tip := g.N() - 1
	res, err := BFSGrow(g, tip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conductance > 0.2 {
		t.Fatalf("BFS growth from whisker tip φ = %v, expected low", res.Conductance)
	}
}

func TestRandomCutErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomCut(gen.Path(1), rng); err == nil {
		t.Fatal("single-node graph accepted")
	}
}

// Property: multilevel bisection always produces a proper nonempty
// bipartition with the reported cut weight.
func TestPropMultilevelProperCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.ErdosRenyi(10+rng.Intn(60), 0.1, rng)
		if err != nil || g.N() < 2 {
			return true
		}
		res, err := MultilevelBisect(g, MultilevelOptions{Seed: seed})
		if err != nil {
			return false
		}
		count := 0
		for _, in := range res.InS {
			if in {
				count++
			}
		}
		if count == 0 || count == g.N() {
			return false
		}
		return almostEq(res.CutWeight, g.Cut(res.InS), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the spectral sweep respects the Cheeger upper bound on
// random connected graphs.
func TestPropSpectralCheeger(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.ErdosRenyi(8+rng.Intn(20), 0.3, rng)
		if err != nil || !g.IsConnected() {
			return true
		}
		res, err := Spectral(g, spectral.FiedlerOptions{Seed: seed})
		if err != nil {
			return true // non-convergence is reported, not a soundness bug
		}
		return res.Conductance <= res.CheegerUpper+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

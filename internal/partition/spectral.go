package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/spectral"
)

// SpectralResult is the outcome of the global spectral partitioner.
type SpectralResult struct {
	Set         []int   // smaller-volume side of the cut
	Conductance float64 // φ of the cut
	Lambda2     float64 // leading nontrivial eigenvalue of 𝓛
	// CheegerUpper is √(2λ₂), the guarantee the sweep cut must meet.
	CheegerUpper float64
}

// Spectral runs the global spectral partitioning algorithm of §3.2:
// compute the Fiedler vector of the normalized Laplacian, embed the
// nodes on the line via the generalized eigenvector D^{-1/2}v₂, and
// return the best sweep cut. By Cheeger's inequality the result is
// "quadratically good": φ(sweep) ≤ √(2·λ₂) ≤ 2·√(φ(G)).
func Spectral(g *graph.Graph, opt spectral.FiedlerOptions) (*SpectralResult, error) {
	fr, err := spectral.Fiedler(g, opt)
	if err != nil {
		return nil, fmt.Errorf("partition: spectral: %w", err)
	}
	sw, err := SweepCut(g, fr.Embedding)
	if err != nil {
		return nil, fmt.Errorf("partition: spectral sweep: %w", err)
	}
	set := smallerSide(g, sw.Set)
	return &SpectralResult{
		Set:          set,
		Conductance:  sw.Conductance,
		Lambda2:      fr.Lambda2,
		CheegerUpper: spectral.Lambda2UpperBoundCheeger(fr.Lambda2),
	}, nil
}

// smallerSide returns whichever of set / complement has smaller volume,
// as a sorted node list.
func smallerSide(g *graph.Graph, set []int) []int {
	inS := g.Membership(set)
	if g.VolumeOf(inS) <= g.Volume()/2 {
		out := append([]int(nil), set...)
		sortInts(out)
		return out
	}
	return graph.SetOf(graph.Complement(inS))
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// RandomCut returns a uniformly random balanced-ish bipartition, the
// crudest baseline: each node joins S with probability 1/2 (resampled if
// degenerate).
func RandomCut(g *graph.Graph, rng *rand.Rand) ([]int, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("partition: RandomCut needs at least 2 nodes")
	}
	for tries := 0; tries < 100; tries++ {
		var set []int
		for u := 0; u < n; u++ {
			if rng.Intn(2) == 0 {
				set = append(set, u)
			}
		}
		if len(set) > 0 && len(set) < n {
			return smallerSide(g, set), nil
		}
	}
	return nil, errors.New("partition: RandomCut failed to sample a proper cut")
}

// BFSGrow returns the best sweep cut over the BFS order from the given
// source — a cheap geodesic baseline ("grow a ball until the boundary is
// thin").
func BFSGrow(g *graph.Graph, src int) (*SweepResult, error) {
	if src < 0 || src >= g.N() {
		return nil, fmt.Errorf("partition: BFSGrow source %d out of range [0,%d)", src, g.N())
	}
	dist := g.BFS(src)
	var nodes []int
	for u, d := range dist {
		if d >= 0 {
			nodes = append(nodes, u)
		}
	}
	sort.Slice(nodes, func(a, b int) bool {
		if dist[nodes[a]] != dist[nodes[b]] {
			return dist[nodes[a]] < dist[nodes[b]]
		}
		return nodes[a] < nodes[b]
	})
	return SweepCutOrdered(gstore.Wrap(g), nodes, len(nodes))
}

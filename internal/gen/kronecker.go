package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// KroneckerConfig parameterizes the stochastic Kronecker (R-MAT)
// generator, the other standard synthetic model — besides the forest
// fire — for social-network-like graphs with power-law degrees and a
// core-periphery NCP. The 2×2 initiator [[A,B],[C,D]] is recursively
// Kronecker-powered; each edge is sampled by descending Levels quadrant
// choices.
type KroneckerConfig struct {
	// Levels is the Kronecker power: the graph has 2^Levels nodes.
	Levels int
	// Edges is the number of edge samples drawn. Duplicates and self
	// loops are discarded, so the realized M is somewhat smaller.
	Edges int
	// A, B, C, D are the initiator probabilities; they must be
	// nonnegative and sum to 1. The classic R-MAT choice is
	// (0.57, 0.19, 0.19, 0.05).
	A, B, C, D float64
}

func (c *KroneckerConfig) withDefaults() KroneckerConfig {
	out := *c
	if out.A == 0 && out.B == 0 && out.C == 0 && out.D == 0 {
		out.A, out.B, out.C, out.D = 0.57, 0.19, 0.19, 0.05
	}
	if out.Edges == 0 {
		out.Edges = 8 << out.Levels // average degree ~16
	}
	return out
}

// Kronecker generates a stochastic Kronecker graph. The result is
// undirected and simple (duplicate samples merged, self loops dropped);
// isolated nodes may remain, as in the real model.
func Kronecker(cfg KroneckerConfig, rng *rand.Rand) (*graph.Graph, error) {
	c := (&cfg).withDefaults()
	if c.Levels < 1 || c.Levels > 30 {
		return nil, fmt.Errorf("gen: Kronecker levels %d outside [1,30]", c.Levels)
	}
	if c.Edges < 1 {
		return nil, fmt.Errorf("gen: Kronecker edge budget %d must be positive", c.Edges)
	}
	sum := c.A + c.B + c.C + c.D
	if c.A < 0 || c.B < 0 || c.C < 0 || c.D < 0 || sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("gen: Kronecker initiator (%v,%v,%v,%v) must be a distribution", c.A, c.B, c.C, c.D)
	}
	n := 1 << c.Levels
	b := graph.NewBuilder(n)
	seen := make(map[int64]bool, c.Edges)
	for e := 0; e < c.Edges; e++ {
		u, v := 0, 0
		for l := 0; l < c.Levels; l++ {
			x := rng.Float64() * sum
			u <<= 1
			v <<= 1
			switch {
			case x < c.A:
				// top-left: both bits 0
			case x < c.A+c.B:
				v |= 1
			case x < c.A+c.B+c.C:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		if u == v {
			continue
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := int64(lo)<<32 | int64(hi)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

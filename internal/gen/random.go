package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ErdosRenyi returns a G(n, p) random graph.
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi p=%v outside [0,1]", p)
	}
	b := graph.NewBuilder(n)
	if p > 0 {
		// Geometric skipping for sparse graphs: iterate potential edges in
		// lexicographic order jumping by Geom(p) gaps.
		logq := math.Log(1 - p)
		if p == 1 {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					b.AddEdge(i, j)
				}
			}
		} else {
			total := int64(n) * int64(n-1) / 2
			var idx int64 = -1
			for {
				r := rng.Float64()
				skip := int64(math.Floor(math.Log(1-r)/logq)) + 1
				idx += skip
				if idx >= total {
					break
				}
				u, v := edgeFromIndex(idx, n)
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// edgeFromIndex maps a linear index in [0, n(n-1)/2) to the lexicographic
// (u, v) pair with u < v.
func edgeFromIndex(idx int64, n int) (int, int) {
	u := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + int(idx)
}

// RandomRegular returns a random d-regular graph on n nodes via the
// configuration model with round-based pairing: stubs are shuffled and
// paired greedily, conflicting stubs are carried into the next round, and
// the whole process restarts if it stalls. n·d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: RandomRegular degree %d invalid for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular n·d = %d·%d is odd", n, d)
	}
	if d == 0 {
		return mustBuildErr(graph.NewBuilder(n))
	}
	const maxRestarts = 200
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := tryRegularPairing(n, d, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: RandomRegular(n=%d, d=%d) failed after %d attempts", n, d, maxRestarts)
}

func tryRegularPairing(n, d int, rng *rand.Rand) (*graph.Graph, bool) {
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	seen := make(map[int64]bool, n*d/2)
	b := graph.NewBuilder(n)
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, u)
		}
	}
	for len(stubs) > 0 {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		var leftover []int
		progress := false
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || seen[key(u, v)] {
				leftover = append(leftover, u, v)
				continue
			}
			seen[key(u, v)] = true
			b.AddEdge(u, v)
			progress = true
		}
		if len(stubs)%2 == 1 { // cannot happen for even n·d, defensive
			leftover = append(leftover, stubs[len(stubs)-1])
		}
		if !progress {
			// Check whether any valid pair remains among the leftovers; if
			// not the pairing is stuck and we must restart from scratch.
			if !anyValidPair(leftover, seen, key) {
				return nil, false
			}
		}
		stubs = leftover
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

func anyValidPair(stubs []int, seen map[int64]bool, key func(u, v int) int64) bool {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !seen[key(stubs[i], stubs[j])] {
				return true
			}
		}
	}
	return false
}

// ChungLu returns a random graph with expected degree sequence w
// (the Chung–Lu model): edge {i,j} appears with probability
// min(1, wᵢwⱼ/Σw). Used with a power-law weight sequence it produces the
// heavy-tailed degree distributions of social and information networks.
func ChungLu(w []float64, rng *rand.Rand) (*graph.Graph, error) {
	n := len(w)
	var total float64
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) || math.IsInf(wi, 0) {
			return nil, fmt.Errorf("gen: ChungLu weight[%d]=%v invalid", i, wi)
		}
		total += wi
	}
	b := graph.NewBuilder(n)
	if total == 0 {
		return b.Build()
	}
	// Efficient O(n + m) sampling (Miller–Hagberg): sort weights
	// descending, then per row use geometric skipping with the row
	// maximum probability and accept with ratio p/q.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Simple insertion of a sort by weight descending.
	sortByWeightDesc(idx, w)
	for a := 0; a < n-1; a++ {
		i := idx[a]
		q := math.Min(1, w[i]*w[idx[a+1]]/total)
		if q <= 0 {
			continue
		}
		bpos := a + 1
		for bpos < n {
			if q < 1 {
				r := rng.Float64()
				skip := int(math.Floor(math.Log(1-r) / math.Log(1-q)))
				bpos += skip
			}
			if bpos >= n {
				break
			}
			j := idx[bpos]
			p := math.Min(1, w[i]*w[j]/total)
			if rng.Float64() < p/q {
				b.AddEdge(i, j)
			}
			q = p
			if q <= 0 {
				break
			}
			bpos++
		}
	}
	return b.Build()
}

func sortByWeightDesc(idx []int, w []float64) {
	sort.Slice(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
}

// PowerLawWeights returns n expected-degree weights following a power law
// with exponent gamma (> 1), minimum expected degree dmin, and maximum
// expected degree capped at dmax (<= 0 means n^(1/2) natural cutoff).
func PowerLawWeights(n int, gamma, dmin, dmax float64, rng *rand.Rand) []float64 {
	if dmax <= 0 {
		dmax = math.Sqrt(float64(n)) * dmin
	}
	w := make([]float64, n)
	for i := range w {
		// Inverse-CDF sampling of a bounded Pareto distribution.
		u := rng.Float64()
		a := math.Pow(dmin, 1-gamma)
		bb := math.Pow(dmax, 1-gamma)
		w[i] = math.Pow(a+u*(bb-a), 1/(1-gamma))
	}
	return w
}

// WattsStrogatz returns a small-world ring lattice on n nodes where each
// node connects to its k nearest neighbors (k even) and each edge is
// rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*graph.Graph, error) {
	if k%2 != 0 || k < 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz k=%d invalid for n=%d (need even, < n)", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz beta=%v outside [0,1]", beta)
	}
	type pair struct{ u, v int }
	exists := make(map[pair]bool, n*k/2)
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		exists[pair{u, v}] = true
	}
	has := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return exists[pair{u, v}]
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			add(u, (u+d)%n)
		}
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + d) % n
			if rng.Float64() >= beta {
				continue
			}
			if !has(u, v) {
				continue // already rewired away by the other endpoint
			}
			// Rewire u—v to u—w for a uniform random non-neighbor w.
			for tries := 0; tries < 2*n; tries++ {
				w := rng.Intn(n)
				if w == u || has(u, w) {
					continue
				}
				delete(exists, canonical(u, v))
				add(u, w)
				break
			}
		}
	}
	b := graph.NewBuilder(n)
	for p := range exists {
		b.AddEdge(p.u, p.v)
	}
	return b.Build()
}

func canonical(u, v int) struct{ u, v int } {
	if u > v {
		u, v = v, u
	}
	return struct{ u, v int }{u, v}
}

// PlantedPartition returns a stochastic block model graph with k blocks
// of size blockN, within-block edge probability pin and between-block
// probability pout. Ground-truth community c contains nodes
// [c·blockN, (c+1)·blockN).
func PlantedPartition(k, blockN int, pin, pout float64, rng *rand.Rand) (*graph.Graph, error) {
	if pin < 0 || pin > 1 || pout < 0 || pout > 1 {
		return nil, fmt.Errorf("gen: PlantedPartition probabilities (%v, %v) outside [0,1]", pin, pout)
	}
	n := k * blockN
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if i/blockN == j/blockN {
				p = pin
			}
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

func mustBuildErr(b *graph.Builder) (*graph.Graph, error) { return b.Build() }

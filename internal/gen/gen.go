// Package gen provides deterministic graph generators for every workload
// the reproduction needs. All stochastic generators take an explicit
// *rand.Rand so experiments are reproducible from a seed.
//
// The structured families (paths, lollipops, rings of cliques, dumbbells)
// exist because the paper's §3.2 argues spectral and flow partitioning
// fail on complementary inputs: "long stringy" graphs saturate spectral's
// quadratic Cheeger factor, while constant-degree expanders saturate
// flow's O(log n) factor. The random families (Chung–Lu, forest fire,
// planted partition) stand in for the AtP-DBLP social network of Fig. 1.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path graph P_n: 0—1—⋯—(n−1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return mustBuild(b, "Path")
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n > 2 {
		b.AddEdge(n-1, 0)
	}
	return mustBuild(b, "Cycle")
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return mustBuild(b, "Complete")
}

// Star returns the star graph: node 0 connected to nodes 1..n-1.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return mustBuild(b, "Star")
}

// Grid returns the rows×cols 2-D grid graph; node (r, c) has index
// r*cols + c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return mustBuild(b, "Grid")
}

// BinaryTree returns the complete binary tree with the given number of
// levels (level 1 is the single root).
func BinaryTree(levels int) *graph.Graph {
	n := (1 << levels) - 1
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		l, r := 2*i+1, 2*i+2
		if l < n {
			b.AddEdge(i, l)
		}
		if r < n {
			b.AddEdge(i, r)
		}
	}
	return mustBuild(b, "BinaryTree")
}

// Lollipop returns a clique of size cliqueN with a path of length pathN
// attached — the canonical "long stringy piece" from §3.2 on which
// spectral methods confuse long paths with deep cuts. Nodes 0..cliqueN-1
// form the clique; the path hangs off node 0.
func Lollipop(cliqueN, pathN int) *graph.Graph {
	n := cliqueN + pathN
	b := graph.NewBuilder(n)
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := 0
	for i := 0; i < pathN; i++ {
		b.AddEdge(prev, cliqueN+i)
		prev = cliqueN + i
	}
	return mustBuild(b, "Lollipop")
}

// Dumbbell returns two cliques of size cliqueN joined by a path with
// pathN interior nodes (pathN = 0 joins them by a single edge). The
// minimum-conductance cut separates the two cliques through the path.
func Dumbbell(cliqueN, pathN int) *graph.Graph {
	n := 2*cliqueN + pathN
	b := graph.NewBuilder(n)
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(i, j)
			b.AddEdge(cliqueN+i, cliqueN+j)
		}
	}
	prev := 0
	for i := 0; i < pathN; i++ {
		b.AddEdge(prev, 2*cliqueN+i)
		prev = 2*cliqueN + i
	}
	b.AddEdge(prev, cliqueN)
	return mustBuild(b, "Dumbbell")
}

// RingOfCliques returns k cliques of size cliqueN arranged in a ring,
// adjacent cliques joined by a single edge. Good-conductance cuts exist
// at every clique boundary.
func RingOfCliques(k, cliqueN int) *graph.Graph {
	n := k * cliqueN
	b := graph.NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * cliqueN
		for i := 0; i < cliqueN; i++ {
			for j := i + 1; j < cliqueN; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		next := ((c + 1) % k) * cliqueN
		if k > 1 && (c+1 < k || k > 2) {
			b.AddEdge(base, next)
		}
	}
	return mustBuild(b, "RingOfCliques")
}

// Caveman returns the connected caveman graph: k cliques of size cliqueN
// where one edge per clique is rewired to the next clique, keeping the
// graph connected while preserving strong communities.
func Caveman(k, cliqueN int) *graph.Graph {
	if cliqueN < 2 {
		return RingOfCliques(k, cliqueN)
	}
	n := k * cliqueN
	b := graph.NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * cliqueN
		for i := 0; i < cliqueN; i++ {
			for j := i + 1; j < cliqueN; j++ {
				// Rewire the (0,1) edge of each clique to the next clique.
				if i == 0 && j == 1 && k > 1 {
					continue
				}
				b.AddEdge(base+i, base+j)
			}
		}
		if k > 1 {
			next := ((c + 1) % k) * cliqueN
			b.AddEdge(base, next+1)
		}
	}
	return mustBuild(b, "Caveman")
}

// WhiskeredExpander attaches pendant paths ("whiskers") to a random
// regular expander core. This mimics the structure [27, 28] report for
// large social networks: an expander-like core with small well-separated
// pieces hanging off, which is exactly the regime where spectral and
// flow partitioning diverge.
func WhiskeredExpander(coreN, degree, whiskers, whiskerLen int, rng *rand.Rand) (*graph.Graph, error) {
	core, err := RandomRegular(coreN, degree, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: WhiskeredExpander core: %w", err)
	}
	n := coreN + whiskers*whiskerLen
	b := graph.NewBuilder(n)
	core.Edges(func(u, v int, w float64) { b.AddWeightedEdge(u, v, w) })
	next := coreN
	for wk := 0; wk < whiskers; wk++ {
		attach := rng.Intn(coreN)
		prev := attach
		for s := 0; s < whiskerLen; s++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

func mustBuild(b *graph.Builder, name string) *graph.Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("gen: %s: %v", name, err))
	}
	return g
}

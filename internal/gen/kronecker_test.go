package gen

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKroneckerBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := Kronecker(KroneckerConfig{Levels: 10, Edges: 8000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Errorf("n = %d, want 1024", g.N())
	}
	if g.M() == 0 || g.M() > 8000 {
		t.Errorf("m = %d, want in (0, 8000]", g.M())
	}
}

func TestKroneckerDegreeSkew(t *testing.T) {
	// With the classic R-MAT initiator (A ≫ D), low-id nodes accumulate
	// far more edges than high-id ones: the max degree must dwarf the
	// median, and node 0 should be among the heaviest.
	rng := rand.New(rand.NewSource(2))
	g, err := Kronecker(KroneckerConfig{Levels: 12, Edges: 40000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	deg := append([]float64(nil), g.Degrees()...)
	sort.Float64s(deg)
	median := deg[len(deg)/2]
	max := deg[len(deg)-1]
	if max < 10*median+1 {
		t.Errorf("degree distribution not skewed: max %g vs median %g", max, median)
	}
	if g.Degree(0) < max/4 {
		t.Errorf("node 0 degree %g should be near the maximum %g under R-MAT", g.Degree(0), max)
	}
}

func TestKroneckerUniformInitiatorIsHomogeneous(t *testing.T) {
	// With the uniform initiator the model degenerates to G(n, m)-like
	// sampling; no strong head-tail asymmetry.
	rng := rand.New(rand.NewSource(3))
	g, err := Kronecker(KroneckerConfig{Levels: 10, Edges: 20000, A: 0.25, B: 0.25, C: 0.25, D: 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var lowHalf, highHalf float64
	for u := 0; u < g.N(); u++ {
		if u < g.N()/2 {
			lowHalf += g.Degree(u)
		} else {
			highHalf += g.Degree(u)
		}
	}
	ratio := lowHalf / highHalf
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("uniform initiator volume ratio %g, want ≈ 1", ratio)
	}
}

func TestKroneckerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Kronecker(KroneckerConfig{Levels: 0, Edges: 10}, rng); err == nil {
		t.Error("levels=0 should error")
	}
	if _, err := Kronecker(KroneckerConfig{Levels: 31, Edges: 10}, rng); err == nil {
		t.Error("levels=31 should error")
	}
	if _, err := Kronecker(KroneckerConfig{Levels: 4, Edges: -1}, rng); err == nil {
		t.Error("negative edges should error")
	}
	if _, err := Kronecker(KroneckerConfig{Levels: 4, Edges: 10, A: 0.9, B: 0.3, C: 0.3, D: 0.3}, rng); err == nil {
		t.Error("non-distribution initiator should error")
	}
	if _, err := Kronecker(KroneckerConfig{Levels: 4, Edges: 10, A: -0.1, B: 0.5, C: 0.3, D: 0.3}, rng); err == nil {
		t.Error("negative initiator entry should error")
	}
}

// TestKroneckerPropertySimpleAndDeterministic: the output is always a
// simple graph within the node budget, and a fixed seed reproduces it.
func TestKroneckerPropertySimpleAndDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := KroneckerConfig{Levels: 8, Edges: 2000}
		g1, err1 := Kronecker(cfg, rand.New(rand.NewSource(seed)))
		g2, err2 := Kronecker(cfg, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			return false
		}
		if g1.N() != 256 || g1.M() != g2.M() || g1.Volume() != g2.Volume() {
			return false
		}
		// Simplicity: no self loops (Builder would reject) and M ≤ budget.
		return g1.M() <= 2000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ForestFireConfig parameterizes the Leskovec–Kleinberg–Faloutsos forest
// fire model, the generator used throughout [27, 28] to mimic social and
// information networks. FwdProb (the "burning probability" p_f) around
// 0.35–0.40 produces the heavy-tailed degrees, expander-like core and
// whisker-dominated community structure that Fig. 1's AtP-DBLP network
// exhibits.
type ForestFireConfig struct {
	N        int     // number of nodes
	FwdProb  float64 // forward burning probability p_f ∈ [0, 1)
	Ambs     int     // number of ambassador nodes each newcomer links to (≥ 1)
	MaxBurn  int     // cap on nodes burned per arrival (0 = no cap beyond N)
	SeedSize int     // size of the initial clique (default 2 if < 2)
}

// ForestFire generates an undirected forest fire graph. Each arriving
// node chooses Ambs ambassadors uniformly, links to them, and then
// recursively "burns" outward: from each burned node it links to a
// geometrically-distributed number of that node's neighbors (mean
// p_f/(1−p_f)), chosen without replacement among unburned neighbors.
func ForestFire(cfg ForestFireConfig, rng *rand.Rand) (*graph.Graph, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("gen: ForestFire needs N >= 1, got %d", cfg.N)
	}
	if cfg.FwdProb < 0 || cfg.FwdProb >= 1 {
		return nil, fmt.Errorf("gen: ForestFire FwdProb=%v outside [0,1)", cfg.FwdProb)
	}
	if cfg.Ambs < 1 {
		cfg.Ambs = 1
	}
	if cfg.SeedSize < 2 {
		cfg.SeedSize = 2
	}
	if cfg.SeedSize > cfg.N {
		cfg.SeedSize = cfg.N
	}
	maxBurn := cfg.MaxBurn
	if maxBurn <= 0 {
		maxBurn = cfg.N
	}

	// Adjacency is grown incrementally, so keep a mutable representation
	// and convert to the immutable Graph at the end.
	adj := make([][]int, cfg.N)
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for i := 0; i < cfg.SeedSize; i++ {
		for j := i + 1; j < cfg.SeedSize; j++ {
			addEdge(i, j)
		}
	}

	visited := make([]int, cfg.N) // stamp per new node, avoids clearing
	stamp := 0
	for v := cfg.SeedSize; v < cfg.N; v++ {
		stamp++
		visited[v] = stamp
		var frontier []int
		burned := 0
		for a := 0; a < cfg.Ambs && a < v; a++ {
			amb := rng.Intn(v)
			for visited[amb] == stamp {
				amb = rng.Intn(v)
			}
			visited[amb] = stamp
			addEdge(v, amb)
			frontier = append(frontier, amb)
			burned++
		}
		for len(frontier) > 0 && burned < maxBurn {
			u := frontier[0]
			frontier = frontier[1:]
			// Geometric number of forward burns with mean p/(1-p).
			nBurn := 0
			for rng.Float64() < cfg.FwdProb {
				nBurn++
			}
			if nBurn == 0 {
				continue
			}
			// Collect unburned neighbors of u among existing nodes.
			var cands []int
			for _, w := range adj[u] {
				if w < v && visited[w] != stamp {
					cands = append(cands, w)
				}
			}
			rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			if nBurn > len(cands) {
				nBurn = len(cands)
			}
			for _, w := range cands[:nBurn] {
				if burned >= maxBurn {
					break
				}
				visited[w] = stamp
				addEdge(v, w)
				frontier = append(frontier, w)
				burned++
			}
		}
	}

	b := graph.NewBuilder(cfg.N)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("P5: N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("path not connected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Error("path degrees wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("C6: N=%d M=%d", g.N(), g.M())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("cycle degree(%d) = %v", u, g.Degree(u))
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Fatalf("K5 edges = %d, want 10", g.M())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 4 {
			t.Fatal("K5 degree wrong")
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 || g.Degree(3) != 1 || g.M() != 6 {
		t.Fatal("star shape wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid N = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("grid M = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid not connected")
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("tree N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("tree not connected")
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 10)
	if g.N() != 15 {
		t.Fatalf("lollipop N = %d", g.N())
	}
	if g.M() != 10+10 {
		t.Fatalf("lollipop M = %d, want 20", g.M())
	}
	if !g.IsConnected() {
		t.Error("lollipop not connected")
	}
	// End of the path has degree 1.
	if g.Degree(14) != 1 {
		t.Error("lollipop path end degree wrong")
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(4, 3)
	if g.N() != 11 {
		t.Fatalf("dumbbell N = %d", g.N())
	}
	if !g.IsConnected() {
		t.Error("dumbbell not connected")
	}
	// Cutting at the path midpoint cuts exactly one edge.
	inS := g.Membership([]int{0, 1, 2, 3, 8})
	if c := g.Cut(inS); c != 1 {
		t.Fatalf("dumbbell mid-path cut = %v, want 1", c)
	}
}

func TestDumbbellNoPath(t *testing.T) {
	g := Dumbbell(3, 0)
	if g.N() != 6 || !g.IsConnected() {
		t.Fatal("dumbbell with no path broken")
	}
	inS := g.Membership([]int{0, 1, 2})
	if c := g.Cut(inS); c != 1 {
		t.Fatalf("direct bridge cut = %v, want 1", c)
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(4, 5)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.IsConnected() {
		t.Error("ring of cliques not connected")
	}
	// One clique forms a low-conductance set.
	clique := []int{0, 1, 2, 3, 4}
	if phi := g.ConductanceOfSet(clique); phi > 0.1 {
		t.Errorf("clique conductance = %v, expected low", phi)
	}
}

func TestCaveman(t *testing.T) {
	g := Caveman(5, 4)
	if g.N() != 20 || !g.IsConnected() {
		t.Fatalf("caveman N=%d connected=%v", g.N(), g.IsConnected())
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(200, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges = C(200,2)*0.05 = 995; allow wide tolerance.
	if g.M() < 700 || g.M() > 1300 {
		t.Fatalf("G(200,0.05) edges = %d, expected ≈995", g.M())
	}
	if _, err := ErdosRenyi(10, 1.5, rng); err == nil {
		t.Fatal("invalid p accepted")
	}
	g0, err := ErdosRenyi(10, 0, rng)
	if err != nil || g0.M() != 0 {
		t.Fatal("G(n,0) should have no edges")
	}
	g1, err := ErdosRenyi(6, 1, rng)
	if err != nil || g1.M() != 15 {
		t.Fatalf("G(6,1) edges = %d, want 15", g1.M())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, err := ErdosRenyi(50, 0.1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(50, 0.1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomRegular(50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %v, want 4", u, g.Degree(u))
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n accepted")
	}
	z, err := RandomRegular(5, 0, rng)
	if err != nil || z.M() != 0 {
		t.Fatal("0-regular should be empty")
	}
}

func TestRandomRegularIsExpanderLike(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomRegular(200, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Skip("rare disconnected sample")
	}
	// Random 6-regular graphs have conductance bounded away from 0; a
	// random balanced cut should have conductance > 0.2.
	inS := make([]bool, 200)
	for i := 0; i < 100; i++ {
		inS[i] = true
	}
	if phi := g.Conductance(inS); phi < 0.2 {
		t.Errorf("expander random-cut conductance = %v, suspiciously low", phi)
	}
}

func TestChungLu(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := PowerLawWeights(500, 2.5, 2, 0, rng)
	g, err := ChungLu(w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Expected volume ≈ Σw (up to min(1,·) clipping); verify the right
	// order of magnitude.
	var sw float64
	for _, wi := range w {
		sw += wi
	}
	if g.Volume() < 0.2*sw || g.Volume() > 2.5*sw {
		t.Errorf("ChungLu volume %v far from expected %v", g.Volume(), sw)
	}
}

func TestChungLuInvalidWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ChungLu([]float64{1, -2}, rng); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := ChungLu([]float64{1, math.NaN()}, rng); err == nil {
		t.Fatal("NaN weight accepted")
	}
	g, err := ChungLu([]float64{0, 0, 0}, rng)
	if err != nil || g.M() != 0 {
		t.Fatal("all-zero weights should give empty graph")
	}
}

func TestPowerLawWeightsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := PowerLawWeights(1000, 2.1, 3, 100, rng)
	for i, wi := range w {
		if wi < 3-1e-9 || wi > 100+1e-9 {
			t.Fatalf("weight[%d] = %v outside [3,100]", i, wi)
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := WattsStrogatz(100, 4, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Edge count is preserved by rewiring.
	if g.M() != 200 {
		t.Fatalf("M = %d, want 200", g.M())
	}
	if _, err := WattsStrogatz(10, 3, 0.1, rng); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := WattsStrogatz(10, 4, 2, rng); err == nil {
		t.Fatal("beta > 1 accepted")
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := WattsStrogatz(20, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Pure ring lattice: every node degree 4.
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("lattice degree(%d) = %v", u, g.Degree(u))
		}
	}
}

func TestPlantedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := PlantedPartition(4, 25, 0.5, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// The planted block should have much lower conductance than a random
	// set of the same size.
	block := make([]int, 25)
	for i := range block {
		block[i] = i
	}
	phiBlock := g.ConductanceOfSet(block)
	random := make([]int, 25)
	for i := range random {
		random[i] = rng.Intn(100)
	}
	seen := map[int]bool{}
	var uniq []int
	for _, u := range random {
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}
	phiRand := g.ConductanceOfSet(uniq)
	if phiBlock >= phiRand {
		t.Errorf("planted block φ=%v not better than random φ=%v", phiBlock, phiRand)
	}
	if _, err := PlantedPartition(2, 5, 1.5, 0, rng); err == nil {
		t.Fatal("invalid pin accepted")
	}
}

func TestForestFire(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := ForestFire(ForestFireConfig{N: 500, FwdProb: 0.35, Ambs: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.IsConnected() {
		t.Error("forest fire graph should be connected (every node links an ambassador)")
	}
	// Burning produces superlinear edge growth: more edges than a tree.
	if g.M() < 520 {
		t.Errorf("forest fire M = %d, expected noticeably more than n-1", g.M())
	}
}

func TestForestFireHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := ForestFire(ForestFireConfig{N: 2000, FwdProb: 0.37, Ambs: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var maxDeg float64
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	avg := g.Volume() / float64(g.N())
	if maxDeg < 8*avg {
		t.Errorf("max degree %v not heavy-tailed vs avg %v", maxDeg, avg)
	}
}

func TestForestFireErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ForestFire(ForestFireConfig{N: 0, FwdProb: 0.3}, rng); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := ForestFire(ForestFireConfig{N: 10, FwdProb: 1}, rng); err == nil {
		t.Fatal("FwdProb=1 accepted")
	}
}

func TestWhiskeredExpander(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, err := WhiskeredExpander(100, 6, 10, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 150 {
		t.Fatalf("N = %d, want 150", g.N())
	}
	if !g.IsConnected() {
		t.Error("whiskered expander should be connected")
	}
	// A whisker (the last 5 nodes) forms a very low conductance set.
	whisker := []int{145, 146, 147, 148, 149}
	if phi := g.ConductanceOfSet(whisker); phi > 0.2 {
		t.Errorf("whisker conductance = %v, expected low", phi)
	}
}

// Property: every generated graph has non-negative degrees summing to
// twice the edge weight, i.e. Volume == 2·Σw.
func TestPropVolumeIsTwiceEdgeWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(2+rng.Intn(40), 0.2, rng)
		if err != nil {
			return false
		}
		var tw float64
		g.Edges(func(u, v int, w float64) { tw += w })
		return math.Abs(g.Volume()-2*tw) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: forest fire graphs are connected for any seed.
func TestPropForestFireConnected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ForestFire(ForestFireConfig{N: 60 + rng.Intn(100), FwdProb: 0.3, Ambs: 1}, rng)
		if err != nil {
			return false
		}
		return g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var _ = graph.SetOf // keep the import for helper use in future tests

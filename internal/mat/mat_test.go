package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomSymmetric(n int, rng *rand.Rand) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestDenseMulMat(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := Identity(2)
	c := a.MulMat(b)
	if MaxAbsDiff(a, c) != 0 {
		t.Fatal("A·I != A")
	}
}

func TestTraceProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSymmetric(5, rng)
	b := randomSymmetric(5, rng)
	want := a.MulMat(b).Trace()
	got := TraceProduct(a, b)
	if !almostEq(got, want, 1e-10) {
		t.Fatalf("TraceProduct = %v, want %v", got, want)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	m := NewDense(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if !almostEq(e.Values[i], w, 1e-12) {
			t.Errorf("value[%d] = %v, want %v", i, e.Values[i], w)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 1, 1e-12) || !almostEq(e.Values[1], 3, 1e-12) {
		t.Fatalf("values = %v, want [1 3]", e.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randomSymmetric(n, rng)
		e, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := e.Reconstruct(func(x float64) float64 { return x })
		if d := MaxAbsDiff(a, rec); d > 1e-9 {
			t.Errorf("n=%d: reconstruction error %v", n, d)
		}
		// Orthonormality of eigenvectors.
		vtv := e.Vectors.Transpose().MulMat(e.Vectors)
		if d := MaxAbsDiff(vtv, Identity(n)); d > 1e-9 {
			t.Errorf("n=%d: VᵀV differs from I by %v", n, d)
		}
	}
}

func TestSymEigenSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSymmetric(12, rng)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] < e.Values[i-1] {
			t.Fatalf("values not ascending: %v", e.Values)
		}
	}
}

func TestExpmIdentityScale(t *testing.T) {
	// exp(0) = I; exp(diag(a)) = diag(e^a).
	z := NewDense(3, 3)
	ez, err := Expm(z)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(ez, Identity(3)); d > 1e-12 {
		t.Fatalf("exp(0) differs from I by %v", d)
	}
	dm := NewDense(2, 2)
	dm.Set(0, 0, 1)
	dm.Set(1, 1, 2)
	ed, err := Expm(dm)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ed.At(0, 0), math.E, 1e-10) || !almostEq(ed.At(1, 1), math.E*math.E, 1e-9) {
		t.Fatalf("exp(diag(1,2)) = %v", ed.Data)
	}
}

func TestExpmAdditivity(t *testing.T) {
	// For commuting matrices (same matrix): exp(A)·exp(A) = exp(2A).
	rng := rand.New(rand.NewSource(11))
	a := randomSymmetric(6, rng)
	a.Scale(0.3)
	ea, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone()
	a2.Scale(2)
	e2a, err := Expm(a2)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(ea.MulMat(ea), e2a); d > 1e-8 {
		t.Fatalf("exp(A)² differs from exp(2A) by %v", d)
	}
}

func TestSolveSPD(t *testing.T) {
	// A = LLᵀ with known solution.
	a := NewDense(3, 3)
	vals := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Fatal("SolveSPD accepted an indefinite matrix")
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := randomSymmetric(6, rng)
	// A = BᵀB + I is SPD.
	a := b.Transpose().MulMat(b)
	for i := 0; i < 6; i++ {
		a.Add(i, i, 1)
	}
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(a.MulMat(inv), Identity(6)); d > 1e-8 {
		t.Fatalf("A·A⁻¹ differs from I by %v", d)
	}
}

func TestCSRBasics(t *testing.T) {
	m, err := NewCSR(3, 3, []Triplet{
		{0, 1, 2}, {1, 0, 2}, {2, 2, 5}, {0, 1, 1}, // duplicate sums to 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("At(0,1) = %v, want 3 (duplicates summed)", m.At(0, 1))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("At(0,0) = %v, want 0", m.At(0, 0))
	}
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 3 || y[1] != 2 || y[2] != 5 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestCSRZeroSumDropped(t *testing.T) {
	m, err := NewCSR(2, 2, []Triplet{{0, 0, 1}, {0, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("cancelled entry not dropped, NNZ = %d", m.NNZ())
	}
}

func TestCSROutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("out-of-range triplet accepted")
	}
}

func TestCSRScaleRowsCols(t *testing.T) {
	m, err := NewCSR(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	r := m.ScaleRows([]float64{2, 10})
	if r.At(0, 1) != 4 || r.At(1, 1) != 30 {
		t.Fatalf("ScaleRows wrong: %v", r.Vals)
	}
	c := m.ScaleCols([]float64{2, 10})
	if c.At(0, 0) != 2 || c.At(0, 1) != 20 {
		t.Fatalf("ScaleCols wrong: %v", c.Vals)
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Fatal("ScaleRows mutated receiver")
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	trips := []Triplet{{0, 1, 1}, {1, 0, 1}, {2, 2, 4}, {1, 2, -1}}
	m, err := NewCSR(3, 3, trips)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != m.At(i, j) {
				t.Fatalf("Dense mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Property: CSR MulVec agrees with Dense MulVec.
func TestPropCSRMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		var trips []Triplet
		for k := 0; k < rng.Intn(3*n); k++ {
			trips = append(trips, Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
		}
		m, err := NewCSR(n, n, trips)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := m.MulVec(x, nil)
		y2 := m.Dense().MulVec(x)
		for i := range y1 {
			if !almostEq(y1[i], y2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalue sum equals trace for random symmetric matrices.
func TestPropEigenvalueSumIsTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randomSymmetric(n, rng)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		return almostEq(sum, a.Trace(), 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOuter(t *testing.T) {
	m := Outer([]float64{1, 2}, []float64{3, 4, 5})
	if m.Rows != 2 || m.Cols != 3 || m.At(1, 2) != 10 || m.At(0, 0) != 3 {
		t.Fatalf("Outer wrong: %+v", m)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 2)
	m.Set(1, 0, 4)
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = %v", m.Data)
	}
}

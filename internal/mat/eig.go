package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when an iterative eigenroutine fails to
// reach its tolerance within the iteration budget.
var ErrNoConvergence = errors.New("mat: eigensolver did not converge")

// Eigen holds a full symmetric eigendecomposition A = V diag(λ) Vᵀ with
// eigenvalues sorted in ascending order. Column j of V (i.e. V.At(i, j)
// over i) is the eigenvector for Values[j].
type Eigen struct {
	Values  []float64
	Vectors *Dense // n×n, eigenvectors in columns
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. It is intended for the dense
// verification path (n up to a few thousand). The input is not modified.
func SymEigen(a *Dense) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: SymEigen requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return &Eigen{Values: nil, Vectors: NewDense(0, 0)}, nil
	}
	w := a.Clone()
	w.Symmetrize()
	v := Identity(n)

	const maxSweeps = 100
	// Tolerance scaled to the matrix magnitude.
	norm := w.FrobeniusNorm()
	if norm == 0 {
		return sortedEigen(diag(w), v), nil
	}
	tol := 1e-14 * norm

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= tol {
			return sortedEigen(diag(w), v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagNorm(w) <= tol*10 {
		return sortedEigen(diag(w), v), nil
	}
	return nil, fmt.Errorf("%w: Jacobi off-diagonal norm %.3e after %d sweeps", ErrNoConvergence, offDiagNorm(w), maxSweeps)
}

func diag(m *Dense) []float64 {
	d := make([]float64, m.Rows)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return d
}

func offDiagNorm(m *Dense) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := m.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// jacobiRotate zeroes w[p][q] with a Givens rotation, accumulating the
// rotation into v.
func jacobiRotate(w, v *Dense, p, q int) {
	n := w.Rows
	apq := w.At(p, q)
	app := w.At(p, p)
	aqq := w.At(q, q)
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	tau := s / (1 + c)

	w.Set(p, p, app-t*apq)
	w.Set(q, q, aqq+t*apq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := w.At(i, p)
		aiq := w.At(i, q)
		w.Set(i, p, aip-s*(aiq+tau*aip))
		w.Set(p, i, w.At(i, p))
		w.Set(i, q, aiq+s*(aip-tau*aiq))
		w.Set(q, i, w.At(i, q))
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, vip-s*(viq+tau*vip))
		v.Set(i, q, viq+s*(vip-tau*viq))
	}
}

func sortedEigen(vals []float64, vectors *Dense) *Eigen {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	sv := make([]float64, n)
	sm := NewDense(n, n)
	for newCol, oldCol := range idx {
		sv[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			sm.Set(i, newCol, vectors.At(i, oldCol))
		}
	}
	return &Eigen{Values: sv, Vectors: sm}
}

// Vector returns a copy of the j-th eigenvector (ascending eigenvalue
// order) as a slice.
func (e *Eigen) Vector(j int) []float64 {
	n := e.Vectors.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = e.Vectors.At(i, j)
	}
	return x
}

// Reconstruct returns V diag(f(λ)) Vᵀ for an arbitrary spectral function
// f. This is the workhorse behind the closed-form SDP optima: matrix
// exponentials, resolvents and matrix powers are all Reconstruct with the
// appropriate scalar function.
func (e *Eigen) Reconstruct(f func(float64) float64) *Dense {
	n := len(e.Values)
	out := NewDense(n, n)
	for k, lam := range e.Values {
		w := f(lam)
		if w == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			vik := e.Vectors.At(i, k)
			if vik == 0 {
				continue
			}
			row := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] += w * vik * e.Vectors.At(j, k)
			}
		}
	}
	return out
}

// Expm returns exp(a) for a symmetric matrix a via eigendecomposition.
func Expm(a *Dense) (*Dense, error) {
	e, err := SymEigen(a)
	if err != nil {
		return nil, fmt.Errorf("mat: Expm: %w", err)
	}
	return e.Reconstruct(math.Exp), nil
}

// SolveSPD solves a x = b for symmetric positive definite a using
// Cholesky factorization. It returns an error if a is not (numerically)
// positive definite.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: SolveSPD requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("mat: SolveSPD dimension mismatch %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	// Cholesky: a = L Lᵀ, lower triangular L stored densely.
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("mat: SolveSPD: matrix not positive definite (pivot %d = %.3e)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// InverseSPD returns the inverse of a symmetric positive definite matrix
// by solving against each basis vector. Intended for the small dense
// verification path only.
func InverseSPD(a *Dense) (*Dense, error) {
	n := a.Rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveSPD(a, e)
		if err != nil {
			return nil, fmt.Errorf("mat: InverseSPD column %d: %w", j, err)
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

package mat

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. It is the scalable representation
// behind every large-graph kernel in this repository: adjacency matrices,
// Laplacians, and random-walk transition matrices are all stored as CSR.
//
// Row i's entries live in Cols[RowPtr[i]:RowPtr[i+1]] and
// Vals[RowPtr[i]:RowPtr[i+1]], with column indices sorted ascending.
type CSR struct {
	Rows, ColsN int
	RowPtr      []int
	Cols        []int
	Vals        []float64
}

// Triplet is a single (row, col, value) entry used to assemble a CSR.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from triplets. Duplicate (row, col) pairs
// are summed; entries whose summed value is exactly zero are dropped, so
// the representation stores structural nonzeros only.
func NewCSR(rows, cols int, entries []Triplet) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("mat: NewCSR negative dimension %dx%d", rows, cols)
	}
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("mat: NewCSR entry (%d,%d) out of range %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := &CSR{Rows: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.Cols = append(m.Cols, sorted[i].Col)
			m.Vals = append(m.Vals, v)
			m.RowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// MulVec computes y = m·x, reusing y if it has the right length and
// allocating otherwise. It returns y.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.ColsN {
		panic(fmt.Sprintf("mat: CSR MulVec dimension mismatch %d != %d", len(x), m.ColsN))
	}
	if len(y) != m.Rows {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.Cols[k]]
		}
		y[i] = s
	}
	return y
}

// At returns element (i, j) via binary search over row i.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.ColsN {
		panic(fmt.Sprintf("mat: CSR At(%d,%d) out of range %dx%d", i, j, m.Rows, m.ColsN))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Cols[lo:hi], j)
	if k < hi && m.Cols[k] == j {
		return m.Vals[k]
	}
	return 0
}

// RowNNZ returns the column indices and values of row i. The returned
// slices alias internal storage and must not be modified.
func (m *CSR) RowNNZ(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// Dense expands m into a dense matrix. For verification at small n only.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.Rows, m.ColsN)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.Cols[k], m.Vals[k])
		}
	}
	return d
}

// ScaleRows returns a new CSR equal to diag(s)·m.
func (m *CSR) ScaleRows(s []float64) *CSR {
	if len(s) != m.Rows {
		panic(fmt.Sprintf("mat: ScaleRows dimension mismatch %d != %d", len(s), m.Rows))
	}
	out := &CSR{Rows: m.Rows, ColsN: m.ColsN, RowPtr: append([]int(nil), m.RowPtr...),
		Cols: append([]int(nil), m.Cols...), Vals: make([]float64, len(m.Vals))}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out.Vals[k] = m.Vals[k] * s[i]
		}
	}
	return out
}

// ScaleCols returns a new CSR equal to m·diag(s).
func (m *CSR) ScaleCols(s []float64) *CSR {
	if len(s) != m.ColsN {
		panic(fmt.Sprintf("mat: ScaleCols dimension mismatch %d != %d", len(s), m.ColsN))
	}
	out := &CSR{Rows: m.Rows, ColsN: m.ColsN, RowPtr: append([]int(nil), m.RowPtr...),
		Cols: append([]int(nil), m.Cols...), Vals: make([]float64, len(m.Vals))}
	for k, c := range m.Cols {
		out.Vals[k] = m.Vals[k] * s[c]
	}
	return out
}

// Package mat provides the two matrix representations the reproduction
// needs: small dense symmetric matrices, used to compute exact optima of
// the regularized SDPs of §3.1 (eigendecompositions, matrix exponentials,
// inverses), and CSR sparse matrices, used by every scalable kernel
// (diffusions, Lanczos, partitioners).
package mat

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Dense is a row-major dense matrix. Most uses in this repository are
// symmetric; the symmetric-only routines (Jacobi, Expm) state that
// requirement explicitly.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, r := range row {
			s += r * x[j]
		}
		y[i] = s
	}
	return y
}

// MulMat returns the product m·b as a new matrix.
func (m *Dense) MulMat(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulMat dimension mismatch %d != %d", m.Cols, b.Rows))
	}
	c := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += a * bv
			}
		}
	}
	return c
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// AddScaled computes m += a·b in place. Shapes must match.
func (m *Dense) AddScaled(a float64, b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * b.Data[i]
	}
}

// Scale multiplies every entry of m by a in place.
func (m *Dense) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// TraceProduct returns Tr(m·b) without forming the product. Both matrices
// must be square with equal dimensions; this is the SDP objective
// Tr(L X) used throughout §3.1.
func TraceProduct(a, b *Dense) float64 {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		panic("mat: TraceProduct requires equal square matrices")
	}
	var t float64
	n := a.Rows
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		for j, av := range arow {
			t += av * b.At(j, i)
		}
	}
	return t
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b, which must share a shape.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var s float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > s {
			s = d
		}
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 { return vec.Norm2(m.Data) }

// IsSymmetric reports whether m is symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Outer returns the rank-one matrix x yᵀ.
func Outer(x, y []float64) *Dense {
	m := NewDense(len(x), len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] = xi * yj
		}
	}
	return m
}

// Symmetrize replaces m with (m + mᵀ)/2 in place; m must be square. It is
// used to scrub floating-point asymmetry before symmetric-only routines.
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Command gengraph generates any of the built-in graph families and
// writes it as an edge list to stdout or a file. An -out path ending in
// ".gsnap" writes the binary CSR snapshot format instead, so expensive
// generations are parsed once and reload in milliseconds (cmd/ncp,
// cmd/partition and graphd -load all accept .gsnap inputs).
//
// Usage:
//
//	gengraph -family forestfire -n 20000 -seed 1 -out graph.txt
//	gengraph -family forestfire -n 20000 -seed 1 -out graph.gsnap
//	gengraph -family dumbbell -clique 10 -path 4
//	gengraph -family chunglu -n 5000 -gamma 2.5
//
// Families: path, cycle, complete, star, grid, tree, lollipop, dumbbell,
// ringofcliques, caveman, regular, er, chunglu, ws, planted, forestfire,
// whiskered.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/persist"
)

func main() {
	var (
		family  = flag.String("family", "forestfire", "graph family to generate")
		n       = flag.Int("n", 1000, "number of nodes (families that take n)")
		rows    = flag.Int("rows", 10, "grid rows")
		cols    = flag.Int("cols", 10, "grid cols")
		cliqueN = flag.Int("clique", 8, "clique size (lollipop/dumbbell/ring/caveman)")
		pathN   = flag.Int("path", 8, "path length (lollipop/dumbbell)")
		k       = flag.Int("k", 4, "number of cliques/blocks/lattice degree")
		deg     = flag.Int("deg", 6, "degree (regular/whiskered)")
		p       = flag.Float64("p", 0.01, "edge probability (er) / rewire prob (ws)")
		pin     = flag.Float64("pin", 0.3, "within-block probability (planted)")
		pout    = flag.Float64("pout", 0.01, "between-block probability (planted)")
		gamma   = flag.Float64("gamma", 2.5, "power-law exponent (chunglu)")
		fwd     = flag.Float64("fwd", 0.37, "forward burn probability (forestfire)")
		whisk   = flag.Int("whiskers", 20, "whisker count (whiskered)")
		whiskL  = flag.Int("whiskerlen", 6, "whisker length (whiskered)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output file; a .gsnap suffix writes a binary snapshot (default stdout edge list)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	g, err := build(*family, buildParams{
		n: *n, rows: *rows, cols: *cols, cliqueN: *cliqueN, pathN: *pathN,
		k: *k, deg: *deg, p: *p, pin: *pin, pout: *pout, gamma: *gamma,
		fwd: *fwd, whisk: *whisk, whiskL: *whiskL,
	}, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	if strings.HasSuffix(*out, persist.SnapshotExt) {
		// Binary snapshot output: checksummed, written atomically
		// (temp + rename), and loadable by every .gsnap-aware consumer.
		if err := persist.WriteSnapshotFile(*out, g); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
	} else {
		w := os.Stdout
		var file *os.File
		if *out != "" {
			file, err = os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
				os.Exit(1)
			}
			w = file
		}
		if err := g.WriteEdgeList(w); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		// Close the output file explicitly: an edge list that fails to
		// flush must fail the command, not vanish silently as a deferred
		// Close error would.
		if file != nil {
			if err := file.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d volume=%g connected=%v\n",
		*family, g.N(), g.M(), g.Volume(), g.IsConnected())
}

type buildParams struct {
	n, rows, cols, cliqueN, pathN, k, deg, whisk, whiskL int
	p, pin, pout, gamma, fwd                             float64
}

func build(family string, bp buildParams, rng *rand.Rand) (*graph.Graph, error) {
	switch family {
	case "path":
		return gen.Path(bp.n), nil
	case "cycle":
		return gen.Cycle(bp.n), nil
	case "complete":
		return gen.Complete(bp.n), nil
	case "star":
		return gen.Star(bp.n), nil
	case "grid":
		return gen.Grid(bp.rows, bp.cols), nil
	case "tree":
		return gen.BinaryTree(bp.k), nil
	case "lollipop":
		return gen.Lollipop(bp.cliqueN, bp.pathN), nil
	case "dumbbell":
		return gen.Dumbbell(bp.cliqueN, bp.pathN), nil
	case "ringofcliques":
		return gen.RingOfCliques(bp.k, bp.cliqueN), nil
	case "caveman":
		return gen.Caveman(bp.k, bp.cliqueN), nil
	case "regular":
		return gen.RandomRegular(bp.n, bp.deg, rng)
	case "er":
		return gen.ErdosRenyi(bp.n, bp.p, rng)
	case "chunglu":
		w := gen.PowerLawWeights(bp.n, bp.gamma, 2, 0, rng)
		return gen.ChungLu(w, rng)
	case "ws":
		return gen.WattsStrogatz(bp.n, bp.k, bp.p, rng)
	case "planted":
		return gen.PlantedPartition(bp.k, bp.n, bp.pin, bp.pout, rng)
	case "forestfire":
		return gen.ForestFire(gen.ForestFireConfig{N: bp.n, FwdProb: bp.fwd, Ambs: 1}, rng)
	case "whiskered":
		return gen.WhiskeredExpander(bp.n, bp.deg, bp.whisk, bp.whiskL, rng)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// loadConfig echoes the run's knobs into the report so a BENCH_load.json
// is self-describing: benchdiff refuses nothing, but a human comparing
// two baselines can see whether the offered load actually matched.
type loadConfig struct {
	Server      string  `json:"server"`
	Graph       string  `json:"graph"`
	Nodes       int     `json:"nodes"`
	Mix         string  `json:"mix"`
	Rate        float64 `json:"rate"`
	Duration    string  `json:"duration"`
	Warmup      string  `json:"warmup"`
	MaxInflight int     `json:"max_inflight"`
	Seed        int64   `json:"seed"`
}

type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type loadMetrics struct {
	Requests  uint64         `json:"requests"`
	Errors    uint64         `json:"errors"`
	Dropped   uint64         `json:"dropped"`
	QPS       float64        `json:"qps"`
	ErrorRate float64        `json:"error_rate"`
	LatencyMS latencySummary `json:"latency_ms"`
}

type report struct {
	Kind    string      `json:"kind"` // always "graphload"
	Config  loadConfig  `json:"config"`
	Metrics loadMetrics `json:"metrics"`
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
func round5(v float64) float64 { return math.Round(v*1e5) / 1e5 }

func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printSummary(w io.Writer, rep report) {
	m := rep.Metrics
	fmt.Fprintf(w, "graphload: %s on %q (%d nodes), mix %s, offered %.0f req/s\n",
		rep.Config.Server, rep.Config.Graph, rep.Config.Nodes, rep.Config.Mix, rep.Config.Rate)
	fmt.Fprintf(w, "  requests   %d (errors %d, dropped %d, error rate %.3f%%)\n",
		m.Requests, m.Errors, m.Dropped, m.ErrorRate*100)
	fmt.Fprintf(w, "  achieved   %.1f qps over the measurement window\n", m.QPS)
	fmt.Fprintf(w, "  latency ms p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f mean=%.3f max=%.3f\n",
		m.LatencyMS.P50, m.LatencyMS.P90, m.LatencyMS.P99, m.LatencyMS.P999, m.LatencyMS.Mean, m.LatencyMS.Max)
}

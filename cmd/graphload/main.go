// Command graphload is graphd's steady-state load generator: it drives
// an open-loop arrival process of strongly-local queries (a configurable
// ppr/localcluster/diffuse/batch mix) against a live daemon through the
// pkg/client SDK, and reports the latency distribution (p50/p90/p99/
// p99.9), achieved qps and error rate as both a human summary and a
// BENCH_load.json artifact that cmd/benchdiff consumes as a regression
// baseline.
//
// Open loop means arrivals are scheduled by the clock, not by response
// completion, so a slow server accumulates inflight requests (bounded
// by -max-inflight; arrivals past the bound are dropped and counted)
// instead of silently throttling the offered load — the honest way to
// measure a serving system's SLO behavior.
//
// Usage:
//
//	graphload -server http://localhost:8080 -rate 200 -duration 10s
//	graphload -self -rate 500 -duration 5s -out BENCH_load.json
//
// With -self it boots an in-process graphd on a loopback listener and
// loads that, so CI needs no separate daemon process. The target graph
// (-graph) is generated (ring of cliques, -gen-k × -gen-size) when the
// server does not already have it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	var (
		server      = flag.String("server", "", "graphd base URL (e.g. http://localhost:8080); empty requires -self")
		self        = flag.Bool("self", false, "boot an in-process graphd on a loopback listener and load it")
		backend     = flag.String("backend", "", "storage backend for -self and for generating the target graph (heap, compact, mmap)")
		dataDir     = flag.String("data-dir", "", "data directory for -self (required for -backend mmap; default in-memory)")
		graphName   = flag.String("graph", "loadtest", "target graph name; generated if absent")
		genK        = flag.Int("gen-k", 32, "cliques in the generated ring-of-cliques graph")
		genSize     = flag.Int("gen-size", 16, "clique size in the generated graph")
		mixSpec     = flag.String("mix", "ppr=0.8,localcluster=0.15,diffuse=0.05", "query mix as op=weight pairs (ops: ppr, localcluster, diffuse, batch)")
		rate        = flag.Float64("rate", 200, "open-loop arrival rate in requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "measured steady-state duration")
		warmup      = flag.Duration("warmup", 2*time.Second, "warmup duration excluded from the report")
		maxInflight = flag.Int("max-inflight", 256, "inflight bound; arrivals past it are dropped (and counted)")
		seed        = flag.Int64("seed", 1, "RNG seed for the op/seed-node sequence")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		out         = flag.String("out", "", "write the JSON report here (e.g. BENCH_load.json)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("graphload: ")

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	if *rate <= 0 {
		log.Fatal("-rate must be positive")
	}

	baseURL := *server
	if *self {
		if baseURL != "" {
			log.Fatal("-self and -server are mutually exclusive")
		}
		shutdown, url, err := bootSelf(*backend, *dataDir)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		baseURL = url
	}
	if baseURL == "" {
		log.Fatal("need -server URL or -self")
	}

	c, err := client.New(baseURL, client.WithTimeout(*timeout))
	if err != nil {
		log.Fatal(err)
	}
	n, err := ensureGraph(c, *graphName, *genK, *genSize, *backend)
	if err != nil {
		log.Fatal(err)
	}

	cfg := loadConfig{
		Server: baseURL, Graph: *graphName, Nodes: n, Mix: *mixSpec,
		Rate: *rate, Duration: duration.String(), Warmup: warmup.String(),
		MaxInflight: *maxInflight, Seed: *seed,
	}
	rep := run(c, cfg, mix, *rate, *warmup, *duration, *maxInflight, *seed, n)
	printSummary(os.Stdout, rep)
	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if rep.Metrics.Requests == 0 {
		log.Fatal("no requests completed in the measurement window")
	}
}

// bootSelf starts an in-process graphd on a loopback listener and
// returns its shutdown function and base URL.
func bootSelf(backend, dataDir string) (func(), string, error) {
	srv, err := service.NewServer(service.Config{Backend: backend, DataDir: dataDir})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}
	return shutdown, "http://" + ln.Addr().String(), nil
}

// ensureGraph resolves the target graph, generating a ring of cliques
// when the name is absent, and returns its node count (the seed-node
// space the load loop draws from).
func ensureGraph(c *client.Client, name string, k, size int, backend string) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := c.Graphs.Get(ctx, name)
	if err == nil {
		if !info.Sealed {
			return 0, fmt.Errorf("graph %q is still streaming; seal it first", name)
		}
		return info.Nodes, nil
	}
	if !api.IsNotFound(err) {
		return 0, err
	}
	var opts []client.CreateOption
	if backend != "" {
		opts = append(opts, client.WithBackend(api.GraphBackend(backend)))
	}
	info, err = c.Graphs.Generate(ctx, name, api.GenerateRequest{
		Family: "ring_of_cliques", K: k, CliqueN: size,
	}, opts...)
	if err != nil {
		return 0, fmt.Errorf("generating graph %q: %w", name, err)
	}
	return info.Nodes, nil
}

package main

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("ppr=0.8,localcluster=0.15,diffuse=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ops) != 3 || m.cumul[2] != 1 {
		t.Fatalf("mix = %+v, want 3 ops with cumulative mass 1", m)
	}
	// Zero-weight ops vanish; weights need not sum to 1.
	m, err = parseMix("ppr=3,diffuse=0,localcluster=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ops) != 2 {
		t.Fatalf("ops = %v, want zero-weight diffuse dropped", m.ops)
	}
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[m.pick(rng)]++
	}
	if counts["diffuse"] != 0 {
		t.Errorf("picked zero-weight op %d times", counts["diffuse"])
	}
	if frac := float64(counts["ppr"]) / 4000; frac < 0.70 || frac > 0.80 {
		t.Errorf("ppr fraction = %.3f, want ~0.75", frac)
	}

	for _, bad := range []string{"", "ppr", "ppr=x", "ppr=-1", "walk=1", "ppr=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {0.999, 10}, {0.10, 1}, {1, 10},
	} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty samples = %v, want 0", got)
	}
	if got := percentile([]float64{42}, 0.999); got != 42 {
		t.Errorf("single-sample p99.9 = %v, want 42", got)
	}
}

func TestBuildReport(t *testing.T) {
	rec := &recorder{errors: 2, dropped: 1}
	for i := 1; i <= 97; i++ {
		rec.latencies = append(rec.latencies, float64(i))
	}
	rep := buildReport(loadConfig{Graph: "g", Rate: 100}, rec, 10*time.Second)
	if rep.Kind != "graphload" {
		t.Fatalf("kind = %q", rep.Kind)
	}
	m := rep.Metrics
	if m.Requests != 97 || m.Errors != 2 || m.Dropped != 1 {
		t.Fatalf("counts = %+v", m)
	}
	if m.QPS != 9.7 {
		t.Errorf("qps = %v, want 9.7", m.QPS)
	}
	if m.ErrorRate != 0.03 {
		t.Errorf("error rate = %v, want 0.03 (errors+drops over total)", m.ErrorRate)
	}
	if m.LatencyMS.P50 != 49 || m.LatencyMS.Max != 97 || m.LatencyMS.Mean != 49 {
		t.Errorf("latency summary = %+v", m.LatencyMS)
	}
}

package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// opMix is a normalized categorical distribution over query kinds,
// stored as cumulative thresholds so one uniform draw picks an op.
type opMix struct {
	ops    []string
	cumul  []float64 // cumulative weights, last element == 1
	source string
}

// parseMix parses "ppr=0.8,localcluster=0.15,diffuse=0.05" into an
// opMix, normalizing weights so they need not sum to one.
func parseMix(spec string) (*opMix, error) {
	m := &opMix{source: spec}
	var total float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		switch op {
		case "ppr", "localcluster", "diffuse", "batch":
		default:
			return nil, fmt.Errorf("mix entry %q: unknown op (want ppr, localcluster, diffuse or batch)", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w == 0 {
			continue
		}
		total += w
		m.ops = append(m.ops, op)
		m.cumul = append(m.cumul, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", spec)
	}
	for i := range m.cumul {
		m.cumul[i] /= total
	}
	m.cumul[len(m.cumul)-1] = 1 // exact, despite rounding
	return m, nil
}

// pick draws an op from the mix with the caller's RNG.
func (m *opMix) pick(rng *rand.Rand) string {
	u := rng.Float64()
	for i, c := range m.cumul {
		if u <= c {
			return m.ops[i]
		}
	}
	return m.ops[len(m.ops)-1]
}

// recorder accumulates post-warmup completions. Latencies are held as
// raw samples (milliseconds) so the report computes exact percentiles;
// at CI-scale request counts (10^4..10^5) the memory is trivial.
type recorder struct {
	mu        sync.Mutex
	latencies []float64 // ms, successes only
	errors    uint64
	dropped   uint64
}

func (r *recorder) success(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.latencies = append(r.latencies, ms)
	r.mu.Unlock()
}

// run drives the open loop: a single dispatcher draws (op, seed) pairs
// and launches each request at its scheduled arrival time, bounded by a
// semaphore of maxInflight permits. Completions inside the measurement
// window (after warmup) land in the recorder.
func run(c *client.Client, cfg loadConfig, mix *opMix, rate float64, warmup, duration time.Duration, maxInflight int, seed int64, nodes int) report {
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, maxInflight)
	rec := &recorder{}
	var wg sync.WaitGroup

	start := time.Now()
	measureFrom := start.Add(warmup)
	end := measureFrom.Add(duration)
	// Absolute schedule: next is advanced by a fixed interval from the
	// run's start, so a slow request does not push later arrivals back
	// (that would silently close the loop).
	next := start
	for {
		now := time.Now()
		if !now.Before(end) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		op := mix.pick(rng)
		seedNode := rng.Intn(nodes)
		select {
		case sem <- struct{}{}:
		default:
			// Inflight bound hit: the arrival is dropped, not deferred —
			// an open loop never converts overload into lower offered load.
			if time.Now().After(measureFrom) {
				atomic.AddUint64(&rec.dropped, 1)
			}
			continue
		}
		wg.Add(1)
		go func(op string, seedNode int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := issue(c, cfg.Graph, op, seedNode, nodes)
			d := time.Since(t0)
			if t0.Before(measureFrom) {
				return // warmup completion; discard either way
			}
			if err != nil {
				atomic.AddUint64(&rec.errors, 1)
				return
			}
			rec.success(d)
		}(op, seedNode)
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)
	if elapsed > duration {
		elapsed = duration // tail requests finish past end; qps uses the window
	}
	return buildReport(cfg, rec, elapsed)
}

// batchOpSeeds and batchOpStride shape the "batch" op: each request
// carries batchOpSeeds seeds, spread batchOpStride apart so they land
// in distinct neighborhoods rather than one cache line of node ids.
const (
	batchOpSeeds  = 8
	batchOpStride = 101
)

// issue sends one query. Request parameters lean on server-side
// Normalize defaults (alpha 0.15, eps 1e-4) so the load is the paper's
// canonical strongly-local regime.
func issue(c *client.Client, graph, op string, seedNode, nodes int) error {
	ctx := context.Background()
	var err error
	switch op {
	case "ppr":
		_, err = c.Graphs.PPR(ctx, graph, api.PPRRequest{Seeds: []int{seedNode}})
	case "localcluster":
		_, err = c.Graphs.LocalCluster(ctx, graph, api.LocalClusterRequest{Method: "ppr", Seeds: []int{seedNode}})
	case "diffuse":
		_, err = c.Graphs.Diffuse(ctx, graph, api.DiffuseRequest{Kind: "heat", Seeds: []int{seedNode}, T: 3})
	case "batch":
		// Eight distinct seeds fanned out from the drawn one — the
		// batched twin of eight single-seed ppr arrivals, exercising the
		// kernel batch engine under load.
		seeds := make([]int, batchOpSeeds)
		for i := range seeds {
			seeds[i] = (seedNode + i*batchOpStride) % nodes
		}
		_, err = c.Graphs.PPRBatch(ctx, graph, api.PPRBatchRequest{Seeds: seeds})
	default:
		err = fmt.Errorf("unknown op %q", op)
	}
	return err
}

// percentile returns the q-quantile (0 < q <= 1) of sorted samples via
// the nearest-rank method: the smallest sample with at least q of the
// mass at or below it.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func buildReport(cfg loadConfig, rec *recorder, window time.Duration) report {
	rec.mu.Lock()
	lat := append([]float64(nil), rec.latencies...)
	rec.mu.Unlock()
	sort.Float64s(lat)
	errors := atomic.LoadUint64(&rec.errors)
	dropped := atomic.LoadUint64(&rec.dropped)
	n := uint64(len(lat))
	total := n + errors + dropped

	var m loadMetrics
	m.Requests = n
	m.Errors = errors
	m.Dropped = dropped
	if window > 0 {
		m.QPS = round3(float64(n) / window.Seconds())
	}
	if total > 0 {
		m.ErrorRate = round5(float64(errors+dropped) / float64(total))
	}
	if n > 0 {
		var sum float64
		for _, v := range lat {
			sum += v
		}
		m.LatencyMS = latencySummary{
			P50:  round3(percentile(lat, 0.50)),
			P90:  round3(percentile(lat, 0.90)),
			P99:  round3(percentile(lat, 0.99)),
			P999: round3(percentile(lat, 0.999)),
			Mean: round3(sum / float64(n)),
			Max:  round3(lat[n-1]),
		}
	}
	return report{Kind: "graphload", Config: cfg, Metrics: m}
}

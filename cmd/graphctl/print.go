package main

import (
	"encoding/json"
	"os"
)

// emit renders one command's typed API response: the raw JSON document
// under -json, the human-oriented summary otherwise. Either way the
// shape on stdout is derived from the pkg/api type, never hand-built.
func emit(v any, pretty func()) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	pretty()
	return nil
}

package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/pkg/api"
	"repro/pkg/client"
)

// command runs one graphctl subcommand over the SDK.
type command func(ctx context.Context, c *client.Client, args []string) error

var commands = map[string]command{
	"health":       cmdHealth,
	"metrics":      cmdMetrics,
	"graphs":       cmdGraphs,
	"graph":        cmdGraph,
	"load":         cmdLoad,
	"generate":     cmdGenerate,
	"stream":       cmdStream,
	"edges":        cmdEdges,
	"seal":         cmdSeal,
	"stats":        cmdStats,
	"delete":       cmdDelete,
	"ppr":          cmdPPR,
	"ppr-batch":    cmdPPRBatch,
	"localcluster": cmdLocalCluster,
	"diffuse":      cmdDiffuse,
	"sweepcut":     cmdSweepCut,
	"jobs":         cmdJobs,
	"job":          cmdJob,
	"debug":        cmdDebug,
	"ncp":          cmdNCP,
	"partition":    cmdPartition,
	"fig1":         cmdFig1,
}

// flags builds a subcommand flag set named name.
func flags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// name pops the leading positional <name> argument.
func name(fs *flag.FlagSet, args []string, usage string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("usage: graphctl %s", usage)
	}
	return args[0], args[1:], nil
}

// seedsFlag parses "-seeds 0,5,7" into a node-id list.
type seedsFlag []int

func (s *seedsFlag) String() string {
	parts := make([]string, len(*s))
	for i, v := range *s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func (s *seedsFlag) Set(v string) error {
	*s = nil
	for _, part := range strings.Split(v, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("seed %q is not a node id", part)
		}
		*s = append(*s, u)
	}
	return nil
}

// openArg opens a file argument, with "-" meaning stdin.
func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func cmdHealth(ctx context.Context, c *client.Client, args []string) error {
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	return emit(h, func() {
		fmt.Printf("%s: %s (api %s, %s, go %s, up %.0fs)\n",
			c.BaseURL(), h.Status, h.APIVersion, versionLine(h), h.GoVersion, h.UptimeSeconds)
	})
}

func versionLine(h api.HealthResponse) string {
	if h.Commit != "" {
		return h.Version + "@" + h.Commit
	}
	return h.Version
}

func cmdMetrics(ctx context.Context, c *client.Client, args []string) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func cmdGraphs(ctx context.Context, c *client.Client, args []string) error {
	graphs, err := c.Graphs.List(ctx)
	if err != nil {
		return err
	}
	return emit(api.GraphList{Graphs: graphs}, func() {
		if len(graphs) == 0 {
			fmt.Println("no graphs")
			return
		}
		fmt.Printf("%-24s %-10s %10s %12s %14s\n", "NAME", "STATE", "NODES", "EDGES", "VOLUME")
		for _, g := range graphs {
			fmt.Printf("%-24s %-10s %10d %12d %14.0f\n", g.Name, g.State, g.Nodes, g.Edges, g.Volume)
		}
	})
}

// cmdGraph is the per-graph verb family: get (descriptive record incl.
// persistence state), export (download the binary GSNAP snapshot) and
// import (upload one), mirroring the job <verb> command shape.
func cmdGraph(ctx context.Context, c *client.Client, args []string) error {
	usage := "usage: graphctl graph <get|export|import> <name> [file|-]"
	if len(args) < 2 {
		return fmt.Errorf("%s", usage)
	}
	verb, g, rest := args[0], args[1], args[2:]
	switch verb {
	case "get":
		info, err := c.Graphs.Get(ctx, g)
		if err != nil {
			return err
		}
		return emit(info, func() {
			fmt.Printf("%s: state=%s n=%d m=%d vol=%.0f persistence=%s",
				info.Name, info.State, info.Nodes, info.Edges, info.Volume, info.Persistence)
			if info.Backend != "" {
				fmt.Printf(" backend=%s", info.Backend)
			}
			fmt.Println()
		})
	case "export":
		if len(rest) != 1 {
			return fmt.Errorf("usage: graphctl graph export <name> <file|->")
		}
		var w io.Writer = os.Stdout
		var f *os.File
		if rest[0] != "-" {
			var err error
			if f, err = os.Create(rest[0]); err != nil {
				return err
			}
			w = f
		}
		n, err := c.Graphs.Export(ctx, g, w)
		if f != nil {
			if cerr := f.Close(); err == nil && cerr != nil {
				return cerr
			}
		}
		if err != nil {
			return err
		}
		if rest[0] != "-" && !asJSON {
			fmt.Printf("exported %s: %d bytes to %s\n", g, n, rest[0])
		}
		return nil
	case "import":
		fs := flags("graph import")
		backend := fs.String("backend", "", "storage backend override: heap, compact or mmap")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: graphctl graph import <name> [-backend B] <file|->")
		}
		rc, err := openArg(fs.Arg(0))
		if err != nil {
			return err
		}
		defer rc.Close()
		info, err := c.Graphs.Import(ctx, g, rc, backendOpts(*backend)...)
		if err != nil {
			return err
		}
		return emitGraphInfo(info, "imported")
	default:
		return fmt.Errorf("unknown graph verb %q (want get|export|import)\n%s", verb, usage)
	}
}

func cmdLoad(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("load")
	backend := fs.String("backend", "", "storage backend override: heap, compact or mmap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: graphctl load [-backend B] <name> <edgelist-file>")
	}
	info, err := c.Graphs.LoadFile(ctx, fs.Arg(0), fs.Arg(1), backendOpts(*backend)...)
	if err != nil {
		return err
	}
	return emitGraphInfo(info, "loaded")
}

func cmdGenerate(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("generate")
	var req api.GenerateRequest
	fs.StringVar(&req.Family, "family", "kronecker", "generator family: "+strings.Join(api.GenerateFamilies, "|"))
	fs.Int64Var(&req.Seed, "seed", 1, "generator RNG seed")
	fs.IntVar(&req.Levels, "levels", 0, "kronecker recursion levels (2^levels nodes)")
	fs.IntVar(&req.Edges, "edges", 0, "kronecker edge samples")
	fs.IntVar(&req.N, "n", 0, "forestfire/erdosrenyi node count")
	fs.Float64Var(&req.P, "p", 0, "forestfire burn / erdosrenyi edge probability")
	fs.IntVar(&req.Rows, "rows", 0, "grid rows")
	fs.IntVar(&req.Cols, "cols", 0, "grid cols")
	fs.IntVar(&req.K, "k", 0, "ring_of_cliques/caveman clique count")
	fs.IntVar(&req.CliqueN, "clique-n", 0, "ring_of_cliques/caveman clique size")
	backend := fs.String("backend", "", "storage backend override: heap, compact or mmap")
	g, rest, err := name(fs, args, "generate <name> [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	info, err := c.Graphs.Generate(ctx, g, req, backendOpts(*backend)...)
	if err != nil {
		return err
	}
	return emitGraphInfo(info, "generated")
}

func cmdStream(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("stream")
	nodes := fs.Int("nodes", 0, "node count of the streaming graph")
	g, rest, err := name(fs, args, "stream <name> -nodes N")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	info, err := c.Graphs.Stream(ctx, g, *nodes)
	if err != nil {
		return err
	}
	return emitGraphInfo(info, "streaming")
}

func cmdEdges(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("edges")
	batch := fs.Int("batch", 10000, "edges per append request")
	g, rest, err := name(fs, args, "edges <name> <file|->")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: graphctl edges <name> <file|->")
	}
	rc, err := openArg(fs.Arg(0))
	if err != nil {
		return err
	}
	defer rc.Close()
	edges, err := readStreamEdges(rc)
	if err != nil {
		return err
	}
	total := 0
	for start := 0; start < len(edges); start += *batch {
		end := min(start+*batch, len(edges))
		n, err := c.Graphs.AppendEdges(ctx, g, edges[start:end])
		if err != nil {
			return fmt.Errorf("after %d edges: %w", total, err)
		}
		total += n
	}
	return emit(api.EdgeBatchResponse{Appended: total}, func() {
		fmt.Printf("appended %d edges to %s\n", total, g)
	})
}

// readStreamEdges parses "u v [w]" lines ('#'/'%' comments, blank lines
// skipped) into the wire edge type.
func readStreamEdges(r io.Reader) ([]api.StreamEdge, error) {
	var out []api.StreamEdge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want 'u v [w]', got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad node ids in %q", line, text)
		}
		e := api.StreamEdge{U: u, V: v}
		if len(fields) == 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad weight in %q", line, text)
			}
			e.W = w
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func cmdSeal(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("seal")
	g, rest, err := name(fs, args, "seal <name>")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	info, err := c.Graphs.Seal(ctx, g)
	if err != nil {
		return err
	}
	return emitGraphInfo(info, "sealed")
}

func cmdStats(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("stats")
	g, rest, err := name(fs, args, "stats <name>")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	st, err := c.Graphs.Stats(ctx, g)
	if err != nil {
		return err
	}
	return emit(st, func() {
		fmt.Printf("%s: n=%d m=%d vol=%.0f degree[min=%.0f avg=%.2f max=%.0f] isolated=%d\n",
			st.Name, st.Nodes, st.Edges, st.Volume, st.MinDegree, st.AvgDegree, st.MaxDegree, st.Isolated)
	})
}

func cmdDelete(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("delete")
	g, rest, err := name(fs, args, "delete <name>")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if err := c.Graphs.Delete(ctx, g); err != nil {
		return err
	}
	return emit(api.DeleteResponse{Status: "deleted"}, func() {
		fmt.Printf("deleted %s\n", g)
	})
}

func cmdPPR(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("ppr")
	var req api.PPRRequest
	var seeds seedsFlag
	fs.Var(&seeds, "seeds", "comma-separated seed node ids")
	fs.Float64Var(&req.Alpha, "alpha", 0, "teleportation (default 0.15)")
	fs.Float64Var(&req.Eps, "eps", 0, "push tolerance (default 1e-4)")
	fs.IntVar(&req.TopK, "topk", 0, "entries to return (default 100)")
	fs.BoolVar(&req.Sweep, "sweep", false, "also sweep the vector for the best cut")
	work := fs.Bool("work", false, "request the kernel work accounting (?debug=work)")
	g, rest, err := name(fs, args, "ppr <name> -seeds 0[,..] [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req.Seeds = seeds
	res, err := c.Graphs.PPR(ctx, g, req, queryOpts(*work)...)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("ppr on %s: support=%d sum=%.4f pushes=%d work=%.0f\n",
			g, res.Support, res.Sum, res.Pushes, res.WorkVolume)
		printTop(res.Top, 10)
		if res.Sweep != nil {
			fmt.Printf("sweep: %d nodes at phi=%.4f (prefix %d)\n",
				res.Sweep.Size, res.Sweep.Conductance, res.Sweep.Prefix)
		}
		printWork(res.Work)
	})
}

func cmdPPRBatch(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("ppr-batch")
	var req api.PPRBatchRequest
	var seeds seedsFlag
	fs.Var(&seeds, "seeds", "comma-separated seed node ids, one diffusion each")
	fs.Float64Var(&req.Alpha, "alpha", 0, "teleportation (default 0.15)")
	fs.Float64Var(&req.Eps, "eps", 0, "push tolerance (default 1e-4)")
	fs.IntVar(&req.TopK, "topk", 0, "entries to return per seed (default 100)")
	fs.BoolVar(&req.Sweep, "sweep", false, "also sweep each vector for its best cut")
	work := fs.Bool("work", false, "request the kernel work accounting (?debug=work)")
	g, rest, err := name(fs, args, "ppr-batch <name> -seeds 0,1[,..] [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req.Seeds = seeds
	res, err := c.Graphs.PPRBatch(ctx, g, req, queryOpts(*work)...)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("ppr-batch on %s: %d seeds, total work=%.0f\n", g, len(res.Results), res.TotalWork)
		for _, r := range res.Results {
			fmt.Printf("  seed %d: support=%d sum=%.4f pushes=%d work=%.0f\n",
				r.Seed, r.Support, r.Sum, r.Pushes, r.WorkVolume)
			if r.Sweep != nil {
				fmt.Printf("    sweep: %d nodes at phi=%.4f (prefix %d)\n",
					r.Sweep.Size, r.Sweep.Conductance, r.Sweep.Prefix)
			}
		}
		printWork(res.Work)
	})
}

func cmdLocalCluster(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("localcluster")
	var req api.LocalClusterRequest
	var seeds seedsFlag
	fs.Var(&seeds, "seeds", "comma-separated seed node ids")
	fs.StringVar(&req.Method, "method", "", "ppr | nibble | heat (default ppr)")
	fs.Float64Var(&req.Alpha, "alpha", 0, "ppr teleportation (default 0.15)")
	fs.Float64Var(&req.Eps, "eps", 0, "truncation threshold (default 1e-4)")
	fs.IntVar(&req.Steps, "steps", 0, "nibble walk steps (default 20)")
	fs.Float64Var(&req.T, "t", 0, "heat-kernel time (default 5)")
	work := fs.Bool("work", false, "request the kernel work accounting (?debug=work)")
	g, rest, err := name(fs, args, "localcluster <name> -seeds 0[,..] [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req.Seeds = seeds
	res, err := c.Graphs.LocalCluster(ctx, g, req, queryOpts(*work)...)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("%s on %s: %d-node cluster at phi=%.4f (vol %.0f, support %d)\n",
			res.Method, g, res.Size, res.Conductance, res.Volume, res.Support)
		printWork(res.Work)
	})
}

func cmdDiffuse(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("diffuse")
	var req api.DiffuseRequest
	var seeds seedsFlag
	fs.Var(&seeds, "seeds", "comma-separated seed node ids")
	fs.StringVar(&req.Kind, "kind", "", "heat | ppr | lazy (default heat)")
	fs.Float64Var(&req.T, "t", 0, "heat time (default 3)")
	fs.Float64Var(&req.Gamma, "gamma", 0, "ppr teleportation (default 0.15)")
	fs.Float64Var(&req.Alpha, "alpha", 0, "lazy-walk laziness (default 0.5)")
	fs.IntVar(&req.K, "k", 0, "lazy-walk steps (default 10)")
	fs.IntVar(&req.TopK, "topk", 0, "entries to return (default 100)")
	work := fs.Bool("work", false, "request the work accounting (?debug=work)")
	g, rest, err := name(fs, args, "diffuse <name> -seeds 0[,..] [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	req.Seeds = seeds
	res, err := c.Graphs.Diffuse(ctx, g, req, queryOpts(*work)...)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("%s diffusion on %s: sum=%.4f\n", res.Kind, g, res.Sum)
		printTop(res.Top, 10)
		printWork(res.Work)
	})
}

// queryOpts maps the -work flag onto the SDK's per-call options.
func queryOpts(work bool) []client.QueryOption {
	if work {
		return []client.QueryOption{client.WithWorkStats()}
	}
	return nil
}

// printWork renders the optional work block of a query response.
func printWork(w *api.WorkStats) {
	if w == nil {
		return
	}
	fmt.Printf("work: method=%s pushes=%d volume=%.0f support=%d",
		w.Method, w.Pushes, w.WorkVolume, w.MaxSupport)
	if w.Steps > 0 {
		fmt.Printf(" steps=%d", w.Steps)
	}
	if w.Terms > 0 {
		fmt.Printf(" terms=%d", w.Terms)
	}
	fmt.Println()
}

func cmdSweepCut(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("sweepcut")
	g, rest, err := name(fs, args, "sweepcut <name> <file|->")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: graphctl sweepcut <name> <file|->")
	}
	rc, err := openArg(fs.Arg(0))
	if err != nil {
		return err
	}
	defer rc.Close()
	values, err := readNodeMasses(rc)
	if err != nil {
		return err
	}
	res, err := c.Graphs.SweepCut(ctx, g, api.SweepCutRequest{Values: values})
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("sweep on %s: %d nodes at phi=%.4f (prefix %d)\n",
			g, res.Size, res.Conductance, res.Prefix)
	})
}

// readNodeMasses parses "node mass" lines into the wire vector type.
func readNodeMasses(r io.Reader) ([]api.NodeMass, error) {
	var out []api.NodeMass
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'node mass', got %q", line, text)
		}
		node, err1 := strconv.Atoi(fields[0])
		mass, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad entry %q", line, text)
		}
		out = append(out, api.NodeMass{Node: node, Mass: mass})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func cmdJobs(ctx context.Context, c *client.Client, args []string) error {
	jobs, err := c.Jobs.List(ctx)
	if err != nil {
		return err
	}
	return emit(api.JobList{Jobs: jobs}, func() {
		if len(jobs) == 0 {
			fmt.Println("no jobs")
			return
		}
		fmt.Printf("%-8s %-10s %-20s %-10s %10s  %s\n", "ID", "TYPE", "GRAPH", "STATUS", "RUN(ms)", "ERROR")
		for _, j := range jobs {
			fmt.Printf("%-8s %-10s %-20s %-10s %10.1f  %s\n",
				j.ID, j.Type, j.Graph, j.Status, j.RunTimeMS, j.Error)
		}
	})
}

func cmdJob(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: graphctl job <get|wait|result|cancel> <id>")
	}
	verb, id := args[0], args[1]
	switch verb {
	case "get":
		v, err := c.Jobs.Get(ctx, id)
		if err != nil {
			return err
		}
		return emitJobView(v)
	case "wait":
		v, err := waitWithProgress(ctx, c, id)
		if err != nil {
			return err
		}
		return emitJobView(v)
	case "result":
		raw, err := c.Jobs.ResultRaw(ctx, id)
		if err != nil {
			return err
		}
		fmt.Println(strings.TrimSpace(string(raw)))
		return nil
	case "cancel":
		v, err := c.Jobs.Cancel(ctx, id)
		if err != nil {
			return err
		}
		return emitJobView(v)
	default:
		return fmt.Errorf("unknown job verb %q (want get|wait|result|cancel)", verb)
	}
}

// cmdDebug is the observability verb family: "queries" dumps the
// server's recent-query trace ring, "metrics [prefix]" fetches the
// Prometheus exposition and pretty-prints it grouped by family.
func cmdDebug(ctx context.Context, c *client.Client, args []string) error {
	if len(args) >= 1 && args[0] == "metrics" {
		return debugMetrics(ctx, c, args[1:])
	}
	if len(args) != 1 || args[0] != "queries" {
		return fmt.Errorf("usage: graphctl debug queries | debug metrics [prefix]")
	}
	qs, err := c.DebugQueries(ctx)
	if err != nil {
		return err
	}
	return emit(api.DebugQueriesResponse{Queries: qs}, func() {
		if len(qs) == 0 {
			fmt.Println("no recent queries")
			return
		}
		fmt.Printf("%-22s %-30s %-16s %6s %-7s %9s  %s\n",
			"ID", "ROUTE", "GRAPH", "STATUS", "CACHE", "MS", "WORK")
		for _, q := range qs {
			work := ""
			if q.Work != nil {
				work = fmt.Sprintf("%s pushes=%d vol=%.0f", q.Work.Method, q.Work.Pushes, q.Work.WorkVolume)
			}
			fmt.Printf("%-22s %-30s %-16s %6d %-7s %9.2f  %s\n",
				q.ID, q.Route, q.Graph, q.Status, q.Cache, q.DurationMS, work)
		}
	})
}

// debugMetrics renders /metrics grouped by family, one header per
// metric with its TYPE, samples indented beneath it. An optional
// argument filters families by name prefix ("graphd_persist",
// "graphd_gstore", ...), which is the intended way to eyeball one
// subsystem's telemetry without the full exposition scrolling past.
func debugMetrics(ctx context.Context, c *client.Client, args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: graphctl debug metrics [prefix]")
	}
	prefix := ""
	if len(args) == 1 {
		prefix = args[0]
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	type family struct {
		name, typ string
		samples   []string
	}
	var fams []*family
	byName := map[string]*family{}
	get := func(name string) *family {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &family{name: name, typ: "untyped"}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	// A histogram's _bucket/_sum/_count samples belong to the base
	// family announced by the TYPE line.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, suf); t != name {
				if f, ok := byName[t]; ok && f.typ == "histogram" {
					return t
				}
			}
		}
		return name
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP"):
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) == 4 {
				get(fields[2]).typ = fields[3]
			}
		case strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(line, "{ "); i > 0 {
				name = line[:i]
			}
			f := get(base(name))
			f.samples = append(f.samples, line)
		}
	}
	shown := 0
	for _, f := range fams {
		if !strings.HasPrefix(f.name, prefix) || len(f.samples) == 0 {
			continue
		}
		shown++
		fmt.Printf("%s (%s)\n", f.name, f.typ)
		for _, s := range f.samples {
			fmt.Printf("  %s\n", s)
		}
	}
	if shown == 0 {
		return fmt.Errorf("no metric families match prefix %q", prefix)
	}
	return nil
}

func cmdNCP(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("ncp")
	var p api.NCPJobParams
	fs.StringVar(&p.Method, "method", "", "spectral | flow | both (default both)")
	fs.IntVar(&p.Seeds, "seeds", 0, "seeds per alpha scale (default 20)")
	fs.IntVar(&p.Workers, "workers", 0, "profile workers (default all CPUs)")
	fs.Int64Var(&p.BaseSeed, "base-seed", 0, "deterministic sampling seed (default 1)")
	g, rest, err := name(fs, args, "ncp <graph> [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	var res api.NCPJobResult
	view, err := submitAndWait(ctx, c, "ncp", g, &p, &res)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("ncp %s on %s (%.0fms): n=%d m=%d\n", view.ID, g, view.RunTimeMS, res.Nodes, res.EdgesM)
		printProfile("spectral", res.Spectral)
		printProfile("flow", res.Flow)
	})
}

func printProfile(label string, p *api.ProfileSummary) {
	if p == nil {
		return
	}
	fmt.Printf("%s profile: %d clusters, envelope:\n", label, p.Clusters)
	for _, pt := range p.Envelope {
		fmt.Printf("  size<=%-6d min phi = %.4f\n", pt.Size, pt.Conductance)
	}
}

func cmdPartition(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("partition")
	var p api.PartitionJobParams
	fs.IntVar(&p.K, "k", 2, "number of parts")
	fs.Int64Var(&p.Seed, "seed", 0, "matching seed (default 1)")
	fs.BoolVar(&p.IncludeLabels, "labels", false, "include the per-node label vector")
	g, rest, err := name(fs, args, "partition <graph> -k K [flags]")
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	var res api.PartitionJobResult
	view, err := submitAndWait(ctx, c, "partition", g, &p, &res)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("partition %s on %s (%.0fms): k=%d max phi=%.4f\n",
			view.ID, g, view.RunTimeMS, res.K, res.MaxPhi)
		for _, part := range res.Parts {
			fmt.Printf("  part %d: %d nodes, vol %.0f, phi=%.4f\n",
				part.Label, part.Size, part.Volume, part.Conductance)
		}
	})
}

func cmdFig1(ctx context.Context, c *client.Client, args []string) error {
	fs := flags("fig1")
	var p api.Fig1JobParams
	fs.IntVar(&p.N, "n", 0, "forest-fire node count (default: experiment default)")
	fs.Float64Var(&p.FwdProb, "fwd-prob", 0, "forest-fire burn probability")
	fs.Int64Var(&p.Seed, "seed", 0, "generator seed")
	fs.IntVar(&p.SpectralSeeds, "spectral-seeds", 0, "spectral profile seeds")
	fs.IntVar(&p.MinSize, "min-size", 0, "smallest cluster scale sampled")
	fs.IntVar(&p.MaxSize, "max-size", 0, "largest cluster scale sampled")
	fs.IntVar(&p.Workers, "workers", 0, "profile workers (default all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var res api.Fig1JobResult
	view, err := submitAndWait(ctx, c, "fig1", "", &p, &res)
	if err != nil {
		return err
	}
	return emit(res, func() {
		fmt.Printf("fig1 %s (%.0fms): n=%d m=%d\n", view.ID, view.RunTimeMS, res.Nodes, res.Edges)
		fmt.Printf("  median phi: spectral=%.4f flow=%.4f (flow wins %.0f%%)\n",
			res.MedianPhiSpectral, res.MedianPhiFlow, 100*res.FracFlowWinsPhi)
		fmt.Printf("  median path: spectral=%.2f flow=%.2f (spectral wins %.0f%%)\n",
			res.MedianPathSpectral, res.MedianPathFlow, 100*res.FracSpectralWinsPath)
		fmt.Printf("  envelope ratio geomean: %.3f\n", res.EnvelopeRatioGeoMean)
	})
}

// submitAndWait is the shared job convenience path: build the typed
// submission, enqueue it, poll to terminal (rendering live progress to
// stderr), decode the typed result.
func submitAndWait(ctx context.Context, c *client.Client, jobType, graph string, params, out any) (api.JobView, error) {
	req, err := api.NewJob(jobType, graph, params)
	if err != nil {
		return api.JobView{}, err
	}
	view, err := c.Jobs.Submit(ctx, req)
	if err != nil {
		return api.JobView{}, err
	}
	if !asJSON {
		fmt.Fprintf(os.Stderr, "submitted %s job %s, waiting...\n", jobType, view.ID)
	}
	view, err = waitWithProgress(ctx, c, view.ID)
	if err != nil {
		return view, err
	}
	if view.Status != api.JobDone {
		return view, api.Errorf(api.CodeConflict, "job %s is %s: %s", view.ID, view.Status, view.Error)
	}
	return view, c.Jobs.Result(ctx, view.ID, out)
}

// waitWithProgress polls the job to a terminal state, repainting a
// single stderr line with the server-reported progress fraction while
// the job runs. In -json mode it degrades to a silent wait.
func waitWithProgress(ctx context.Context, c *client.Client, id string) (api.JobView, error) {
	if asJSON {
		return c.Jobs.Wait(ctx, id)
	}
	last := -1
	v, err := c.Jobs.WaitFunc(ctx, id, func(v api.JobView) {
		if v.Status != api.JobRunning {
			return
		}
		if pct := int(v.Progress * 100); pct != last {
			last = pct
			fmt.Fprintf(os.Stderr, "\rjob %s running: %3d%%", id, pct)
		}
	})
	if last >= 0 {
		fmt.Fprintln(os.Stderr)
	}
	return v, err
}

func printTop(top []api.NodeMass, limit int) {
	for i, nm := range top {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(top)-limit)
			return
		}
		fmt.Printf("  node %-8d %.6f\n", nm.Node, nm.Mass)
	}
}

func emitGraphInfo(info api.GraphInfo, verb string) error {
	return emit(info, func() {
		fmt.Printf("%s %s: state=%s n=%d m=%d vol=%.0f", verb, info.Name, info.State, info.Nodes, info.Edges, info.Volume)
		if info.Persistence != "" {
			fmt.Printf(" persistence=%s", info.Persistence)
		}
		if info.Backend != "" {
			fmt.Printf(" backend=%s", info.Backend)
		}
		fmt.Println()
	})
}

// backendOpts turns a -backend flag value into client create options.
func backendOpts(backend string) []client.CreateOption {
	if backend == "" {
		return nil
	}
	return []client.CreateOption{client.WithBackend(api.GraphBackend(backend))}
}

func emitJobView(v api.JobView) error {
	return emit(v, func() {
		fmt.Printf("job %s: type=%s graph=%s status=%s", v.ID, v.Type, v.Graph, v.Status)
		if v.Status == api.JobRunning && v.Progress > 0 {
			fmt.Printf(" progress=%.0f%%", 100*v.Progress)
		}
		if v.FromCache {
			fmt.Print(" (cached)")
		}
		if v.RunTimeMS > 0 {
			fmt.Printf(" run=%.1fms", v.RunTimeMS)
		}
		if v.Error != "" {
			fmt.Printf(" error=%q", v.Error)
		}
		fmt.Println()
	})
}

// Command graphctl is the command-line client for graphd, built
// entirely on the pkg/client SDK — it constructs no JSON by hand and
// parses no HTTP responses itself, so it doubles as a living example of
// the public API.
//
// Usage:
//
//	graphctl [-server URL] [-json] [flags] <command> [args]
//
// Graph lifecycle:
//
//	graphctl load web edges.txt.gz          # upload an edge list (.gz ok)
//	graphctl generate demo -family ring_of_cliques -k 16 -clique-n 12
//	graphctl stream inc -nodes 1000         # open an incremental graph
//	graphctl edges inc batch.txt            # append edges (file or '-')
//	graphctl seal inc                       # freeze into queryable form
//	graphctl graphs                         # list graphs
//	graphctl graph get demo                 # one record, incl. persistence
//	graphctl graph export demo demo.gsnap   # download binary snapshot
//	graphctl graph import copy demo.gsnap   # upload it as a new graph
//	graphctl stats demo
//	graphctl delete demo
//
// Synchronous queries:
//
//	graphctl ppr demo -seeds 0 -alpha 0.1 -sweep
//	graphctl localcluster demo -method nibble -seeds 5
//	graphctl diffuse demo -kind heat -seeds 0 -topk 10
//	graphctl sweepcut demo vector.txt       # "node mass" lines
//
// Async jobs:
//
//	graphctl ncp demo -method spectral -seeds 8      # submit + wait + result
//	graphctl partition demo -k 4
//	graphctl fig1 -n 2000
//	graphctl jobs                                    # list
//	graphctl job get j1 | job result j1 | job wait j1 | job cancel j1
//
// Global flags go before the command; -json switches every command from
// pretty-printed summaries to the raw API response.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/pkg/client"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// global flags, bound in run.
var (
	asJSON  bool
	timeout time.Duration
)

func run(args []string) int {
	global := flag.NewFlagSet("graphctl", flag.ContinueOnError)
	global.Usage = func() { usage(global) }
	server := global.String("server", envOr("GRAPHD_SERVER", "http://localhost:8080"), "graphd base URL (or $GRAPHD_SERVER)")
	retries := global.Int("retries", 2, "retry budget for 5xx/connection errors")
	gzipUp := global.Bool("gzip", false, "gzip-compress edge-list uploads")
	version := global.Bool("version", false, "print version and exit")
	global.BoolVar(&asJSON, "json", false, "print raw API responses as JSON")
	global.DurationVar(&timeout, "timeout", 5*time.Minute, "overall deadline per command")
	if err := global.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.String("graphctl"))
		return 0
	}
	rest := global.Args()
	if len(rest) == 0 {
		usage(global)
		return 2
	}

	opts := []client.Option{
		client.WithRetries(*retries),
		client.WithPollInterval(100 * time.Millisecond),
	}
	if *gzipUp {
		opts = append(opts, client.WithGzipUpload())
	}
	c, err := client.New(*server, opts...)
	if err != nil {
		return fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	cmd, args := rest[0], rest[1:]
	run, ok := commands[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "graphctl: unknown command %q\n\n", cmd)
		usage(global)
		return 2
	}
	if err := run(ctx, c, args); err != nil {
		return fail(err)
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "graphctl: %v\n", err)
	return 1
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func usage(fs *flag.FlagSet) {
	fmt.Fprint(os.Stderr, `graphctl — command-line client for graphd

usage: graphctl [global flags] <command> [command flags] [args]

graphs:
  graphs                         list stored graphs
  graph get <name>               one graph's record (incl. persistence)
  graph export <name> <file|->   download the binary .gsnap snapshot
  graph import <name> <file|->   upload a .gsnap snapshot as a sealed graph
  load <name> <file>             upload an edge list (plain or .gz)
  generate <name> [flags]        synthesize a graph server-side
  stream <name> -nodes N         open an incremental graph
  edges <name> <file|->          append "u v [w]" edges to a stream
  seal <name>                    freeze a streaming graph
  stats <name>                   degree/volume summary
  delete <name>                  remove a graph

queries:
  ppr <name> [flags]             personalized PageRank (ACL push)
  ppr-batch <name> [flags]       K independent single-seed pushes in one batch
  localcluster <name> [flags]    ppr | nibble | heat local clustering
  diffuse <name> [flags]         heat | ppr | lazy dense diffusion
  sweepcut <name> <file|->       sweep a "node mass" vector
  (add -work to ppr/localcluster/diffuse for kernel work accounting)

jobs:
  ncp <name> [flags]             NCP profile: submit, wait, print
  partition <name> -k K          k-way partition: submit, wait, print
  fig1 [flags]                   Figure-1 experiment: submit, wait, print
  jobs                           list jobs
  job <get|wait|result|cancel> <id>

misc:
  health                         server health and build info
  metrics                        raw Prometheus metrics
  debug queries                  recent queries (id, route, cache, ms, work)
  debug metrics [prefix]         metrics grouped by family, filtered by name prefix

global flags:
`)
	fs.PrintDefaults()
}

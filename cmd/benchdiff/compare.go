package main

// largerBetter lists the units where an increase is an improvement;
// every other unit (ns/op, B/op, allocs/op, latency percentiles,
// error_rate) regresses upward.
var largerBetter = map[string]bool{"qps": true}

// diff is one compared (benchmark, unit) pair.
type diff struct {
	Bench     string
	Unit      string
	Old, New  float64
	Rel       float64 // signed relative change vs old (0 when old == 0)
	Regressed bool
	Improved  bool
}

// compare evaluates every (bench, unit) pair present in both maps.
// units, when non-nil, is an allowlist; pairs outside it are skipped
// entirely. A zero baseline falls back to an absolute comparison: the
// gate trips when the new value exceeds the tolerance itself (relative
// change from zero is undefined, but "error rate went from 0 to 0.4"
// must still fail).
func compare(old, cur metricsMap, tolerance float64, units map[string]bool) []diff {
	var diffs []diff
	for bench, oldUnits := range old {
		curUnits, ok := cur[bench]
		if !ok {
			continue
		}
		for unit, ov := range oldUnits {
			if units != nil && !units[unit] {
				continue
			}
			nv, ok := curUnits[unit]
			if !ok {
				continue
			}
			d := diff{Bench: bench, Unit: unit, Old: ov, New: nv}
			if ov != 0 {
				d.Rel = (nv - ov) / ov
				if largerBetter[unit] {
					d.Regressed = d.Rel < -tolerance
					d.Improved = d.Rel > tolerance
				} else {
					d.Regressed = d.Rel > tolerance
					d.Improved = d.Rel < -tolerance
				}
			} else if !largerBetter[unit] {
				d.Regressed = nv > tolerance
				d.Improved = false
			}
			diffs = append(diffs, d)
		}
	}
	return diffs
}

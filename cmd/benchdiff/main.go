// Command benchdiff is the repository's performance regression gate:
// it compares two benchmark artifacts — either test2json streams from
// `make bench` (BENCH_ncp.json, BENCH_mmap.json, ...) or graphload
// reports (BENCH_load.json) — metric by metric, and exits non-zero when
// any metric moved past its tolerance in the bad direction.
//
// Usage:
//
//	benchdiff [-tolerance 0.25] [-units qps,error_rate,allocs/op] old.json new.json
//
// Every (benchmark, unit) pair present in BOTH files is compared; pairs
// present in only one file are reported but never fail the gate (the
// benchmark set is allowed to grow). Units are smaller-is-better except
// qps, which is larger-is-better. A baseline of zero switches to an
// absolute comparison against the tolerance, so error_rate 0 → 0.3
// still trips a 0.25 gate.
//
// Exit codes: 0 no regression, 1 regression detected, 2 usage or parse
// failure. Machine-noisy units (ns/op on shared CI runners) should be
// excluded with -units; deterministic ones (allocs/op, B/op, qps at an
// un-saturating offered rate, error_rate) are the intended gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative regression (0.25 = 25%)")
		unitsSpec = flag.String("units", "", "comma-separated unit allowlist (empty = compare all units)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *tolerance < 0 {
		log.Print("-tolerance must be non-negative")
		os.Exit(2)
	}
	units := parseUnits(*unitsSpec)

	old, err := parseFile(flag.Arg(0))
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	diffs := compare(old, cur, *tolerance, units)
	regressions := render(os.Stdout, diffs, flag.Arg(0), flag.Arg(1), *tolerance)
	if regressions > 0 {
		os.Exit(1)
	}
}

func parseUnits(spec string) map[string]bool {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	units := map[string]bool{}
	for _, u := range strings.Split(spec, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units[u] = true
		}
	}
	return units
}

// render prints the comparison table and returns the regression count.
func render(w *os.File, diffs []diff, oldPath, newPath string, tol float64) int {
	fmt.Fprintf(w, "benchdiff: %s -> %s (tolerance %.0f%%)\n", oldPath, newPath, tol*100)
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].Bench != diffs[j].Bench {
			return diffs[i].Bench < diffs[j].Bench
		}
		return diffs[i].Unit < diffs[j].Unit
	})
	regressions := 0
	for _, d := range diffs {
		mark := "  "
		if d.Regressed {
			mark = "✗ "
			regressions++
		} else if d.Improved {
			mark = "+ "
		}
		fmt.Fprintf(w, "%s%-60s %-12s %14.4g -> %-14.4g %+7.1f%%\n",
			mark, d.Bench, d.Unit, d.Old, d.New, d.Rel*100)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d metric(s) regressed past %.0f%%\n", regressions, tol*100)
	} else {
		fmt.Fprintf(w, "ok: no regression past %.0f%% across %d compared metric(s)\n", tol*100, len(diffs))
	}
	return regressions
}

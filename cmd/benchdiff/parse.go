package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// metricsMap is benchmark name -> unit -> value. Both artifact formats
// normalize into it: a test2json stream yields one entry per Benchmark*
// result line, a graphload report yields a single "graphload" bench
// with qps / error_rate / p50_ms / ... units.
type metricsMap map[string]map[string]float64

func (m metricsMap) add(bench, unit string, value float64) {
	if m[bench] == nil {
		m[bench] = map[string]float64{}
	}
	m[bench][unit] = value
}

// parseFile sniffs the artifact format from its first JSON value: a
// graphload report is one object with kind=="graphload"; everything
// else is treated as a test2json event stream.
func parseFile(path string) (metricsMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(data, &probe) == nil && probe.Kind == "graphload" {
		return parseGraphload(path, data)
	}
	return parseTest2JSON(path, data)
}

func parseGraphload(path string, data []byte) (metricsMap, error) {
	var rep struct {
		Kind    string `json:"kind"`
		Metrics struct {
			Requests  uint64  `json:"requests"`
			QPS       float64 `json:"qps"`
			ErrorRate float64 `json:"error_rate"`
			LatencyMS struct {
				P50  float64 `json:"p50"`
				P90  float64 `json:"p90"`
				P99  float64 `json:"p99"`
				P999 float64 `json:"p999"`
				Mean float64 `json:"mean"`
				Max  float64 `json:"max"`
			} `json:"latency_ms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Metrics.Requests == 0 {
		return nil, fmt.Errorf("%s: graphload report has zero completed requests", path)
	}
	m := metricsMap{}
	lm := rep.Metrics.LatencyMS
	m.add("graphload", "qps", rep.Metrics.QPS)
	m.add("graphload", "error_rate", rep.Metrics.ErrorRate)
	m.add("graphload", "p50_ms", lm.P50)
	m.add("graphload", "p90_ms", lm.P90)
	m.add("graphload", "p99_ms", lm.P99)
	m.add("graphload", "p999_ms", lm.P999)
	m.add("graphload", "mean_ms", lm.Mean)
	m.add("graphload", "max_ms", lm.Max)
	return m, nil
}

// parseTest2JSON extracts benchmark result lines from a `go test -json`
// event stream. One result line is frequently SPLIT across several
// Output events (the name flushes before the timing completes), so all
// Output payloads are concatenated before line-splitting — scanning
// per-event would silently drop every split result.
func parseTest2JSON(path string, data []byte) (metricsMap, error) {
	var out strings.Builder
	dec := json.NewDecoder(strings.NewReader(string(data)))
	events := 0
	for {
		var evt struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := dec.Decode(&evt); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s: not a graphload report or test2json stream: %w", path, err)
		}
		events++
		if evt.Action == "output" {
			out.WriteString(evt.Output)
		}
	}
	if events == 0 {
		return nil, fmt.Errorf("%s: empty benchmark artifact", path)
	}
	m := metricsMap{}
	for _, line := range strings.Split(out.String(), "\n") {
		bench, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		for unit, v := range metrics {
			m.add(bench, unit, v)
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return m, nil
}

// parseBenchLine parses one textual benchmark result, e.g.
//
//	BenchmarkBackendPPR/n4k/mmap-8   1234  98765 ns/op  432 B/op  7 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts compare as the same benchmark.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // second field must be the iteration count
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const graphloadReport = `{
  "kind": "graphload",
  "config": {"graph": "loadtest", "rate": 300},
  "metrics": {
    "requests": 600, "errors": 0, "dropped": 0,
    "qps": 300.5, "error_rate": 0,
    "latency_ms": {"p50": 0.36, "p90": 0.7, "p99": 3.8, "p999": 6.2, "mean": 0.57, "max": 6.2}
  }
}`

const regressedReport = `{
  "kind": "graphload",
  "config": {"graph": "loadtest", "rate": 300},
  "metrics": {
    "requests": 400, "errors": 200, "dropped": 0,
    "qps": 150.0, "error_rate": 0.33,
    "latency_ms": {"p50": 0.9, "p90": 2.1, "p99": 9.9, "p999": 20.0, "mean": 1.4, "max": 22.0}
  }
}`

// test2json stream with a result line SPLIT across two Output events —
// the shape `go test -json` actually emits, and the reason the parser
// concatenates before line-splitting.
const test2jsonStream = `{"Action":"run","Package":"repro","Test":"BenchmarkBackendPPR"}
{"Action":"output","Package":"repro","Test":"BenchmarkBackendPPR","Output":"BenchmarkBackendPPR/n4k/mmap-8 \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkBackendPPR","Output":"    1234\t     98765 ns/op\t     432 B/op\t       7 allocs/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkBackendPPR","Output":"BenchmarkBackendLoad/n4k/heap-8 \t    50\t  2000000 ns/op\t  900000 B/op\t    1200 allocs/op\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseGraphloadReport(t *testing.T) {
	m, err := parseFile(writeTemp(t, "load.json", graphloadReport))
	if err != nil {
		t.Fatal(err)
	}
	g := m["graphload"]
	if g == nil {
		t.Fatal("no graphload bench parsed")
	}
	if g["qps"] != 300.5 || g["p99_ms"] != 3.8 || g["error_rate"] != 0 {
		t.Fatalf("parsed metrics = %v", g)
	}
}

func TestParseTest2JSONSplitOutput(t *testing.T) {
	m, err := parseFile(writeTemp(t, "bench.json", test2jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	ppr := m["BenchmarkBackendPPR/n4k/mmap"]
	if ppr == nil {
		t.Fatalf("split result line not reassembled; parsed benches: %v", m)
	}
	if ppr["ns/op"] != 98765 || ppr["allocs/op"] != 7 {
		t.Fatalf("metrics = %v", ppr)
	}
	if _, ok := m["BenchmarkBackendLoad/n4k/heap"]; !ok {
		t.Errorf("GOMAXPROCS suffix not stripped; benches: %v", m)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for name, content := range map[string]string{
		"empty.json":   "",
		"garbage.json": "not json at all",
		"noresult.json": `{"Action":"output","Output":"=== RUN TestFoo\n"}
`,
	} {
		if _, err := parseFile(writeTemp(t, name, content)); err == nil {
			t.Errorf("%s: parse accepted, want error", name)
		}
	}
}

// TestCompareInjectedRegression is the acceptance contract: an injected
// regression past the tolerance must be flagged, in both directions
// (qps drop = larger-is-better, p99 rise = smaller-is-better), and the
// zero-baseline error_rate must gate on the absolute tolerance.
func TestCompareInjectedRegression(t *testing.T) {
	old, err := parseFile(writeTemp(t, "old.json", graphloadReport))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := parseFile(writeTemp(t, "new.json", regressedReport))
	if err != nil {
		t.Fatal(err)
	}
	diffs := compare(old, bad, 0.25, nil)
	regressed := map[string]bool{}
	for _, d := range diffs {
		if d.Regressed {
			regressed[d.Unit] = true
		}
	}
	for _, unit := range []string{"qps", "p99_ms", "error_rate"} {
		if !regressed[unit] {
			t.Errorf("injected regression in %s not flagged; diffs: %+v", unit, diffs)
		}
	}

	// The same artifact against itself is clean.
	for _, d := range compare(old, old, 0.25, nil) {
		if d.Regressed {
			t.Errorf("self-comparison flagged %s/%s as regressed", d.Bench, d.Unit)
		}
	}

	// A generous tolerance lets a mild slowdown through; the unit
	// allowlist drops everything else from consideration.
	diffs = compare(old, bad, 0.25, map[string]bool{"p50_ms": true})
	if len(diffs) != 1 || diffs[0].Unit != "p50_ms" {
		t.Fatalf("unit filter leaked: %+v", diffs)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	old := metricsMap{"b": {"allocs/op": 100}}
	within := metricsMap{"b": {"allocs/op": 124}}
	past := metricsMap{"b": {"allocs/op": 126}}
	if d := compare(old, within, 0.25, nil); d[0].Regressed {
		t.Errorf("24%% growth flagged at 25%% tolerance")
	}
	if d := compare(old, past, 0.25, nil); !d[0].Regressed {
		t.Errorf("26%% growth not flagged at 25%% tolerance")
	}
	// Benchmarks present only on one side never gate.
	newOnly := metricsMap{"b": {"allocs/op": 100}, "c": {"allocs/op": 9999}}
	if d := compare(old, newOnly, 0.25, nil); len(d) != 1 {
		t.Errorf("one-sided bench compared: %+v", d)
	}
}

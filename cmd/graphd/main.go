// Command graphd is the long-running graph-analytics daemon: it serves
// the paper's strongly-local algorithms (PPR push, Nibble, heat-kernel
// diffusion, sweep cuts) as synchronous HTTP/JSON queries with caching
// and per-request deadlines, and the expensive global computations (NCP
// profiles, multilevel partitions, Figure-1 experiments) as cancellable
// async jobs on a bounded worker pool.
//
// With -data-dir the store is durable: sealed graphs persist as binary
// CSR snapshots (.gsnap), streaming graphs as fsync'd write-ahead logs
// (.wal), and a restart recovers both — corrupt files are quarantined
// with a log line instead of failing boot. See docs/persistence.md.
//
// With -backend the daemon picks the storage backend sealed graphs are
// served from: "heap" (native CSR), "compact" (uint32/float32 CSR at
// roughly half the memory) or "mmap" (queries run straight off the
// memory-mapped snapshot; requires -data-dir, and a restart remaps
// instead of reloading). See docs/storage.md.
//
// Usage:
//
//	graphd -addr :8080
//	graphd -addr :8080 -data-dir /var/lib/graphd
//	graphd -addr :8080 -load social=edges.txt.gz -load road=road.gsnap
//	graphd -addr :8080 -debug-addr 127.0.0.1:6060 -access-log
//
// Observability: /metrics (Prometheus text) and /debug/queries (recent
// query trace) are on the serving port; pprof and expvar are only ever
// on the separate -debug-addr listener. See docs/observability.md.
//
// Quickstart (cmd/graphctl is the CLI client, pkg/client the Go SDK):
//
//	graphctl health
//	graphctl generate demo -family kronecker -levels 10 -seed 1
//	graphctl ppr demo -seeds 0 -alpha 0.1 -sweep
//	graphctl ncp demo -method spectral
//
// The wire contract is the versioned pkg/api package; docs/api.md is
// the endpoint-by-endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/persist"
	"repro/internal/service"
)

// loadFlags collects repeated -load name=path flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		debugAddr  = flag.String("debug-addr", "", "debug listen address for pprof/expvar (empty = disabled; never exposed on -addr)")
		accessLog  = flag.Bool("access-log", false, "log one structured line per request to stderr")
		traceBuf   = flag.Int("trace-queries", 0, "recent-query trace entries for /debug/queries (0 = default 128, negative disables)")
		cacheSize  = flag.Int("cache", 1024, "result cache entries (negative disables)")
		jobWorkers = flag.Int("job-workers", 2, "async job worker count")
		jobQueue   = flag.Int("job-queue", 64, "max pending jobs")
		timeout    = flag.Duration("query-timeout", 30*time.Second, "default per-query deadline")
		coalesce   = flag.Duration("coalesce-window", 0, "gather window for merging concurrent single-seed ppr requests into one batch pass (0 disables; try 200µs)")
		dataDir    = flag.String("data-dir", "", "durable store directory (snapshots + WALs; empty = in-memory)")
		backend    = flag.String("backend", "heap", "default graph storage backend: heap, compact or mmap (mmap requires -data-dir)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Var(&loads, "load", "preload a graph: name=path (repeatable; edge list, .gz or .gsnap)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("graphd"))
		return
	}

	cfg := service.Config{
		CacheEntries:   *cacheSize,
		JobWorkers:     *jobWorkers,
		JobQueue:       *jobQueue,
		QueryTimeout:   *timeout,
		CoalesceWindow: *coalesce,
		DataDir:        *dataDir,
		Backend:        *backend,
		TraceBuffer:    *traceBuf,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		log.Fatalf("graphd: %v", err)
	}
	defer srv.Close()

	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("graphd: -load %q: want name=path", spec)
		}
		g, err := persist.ReadGraphFile(path)
		if err != nil {
			log.Fatalf("graphd: loading %s: %v", path, err)
		}
		if _, err := srv.Store().Put(name, g); err != nil {
			// A recovered graph with the same name already satisfies the
			// preload; anything else is fatal.
			var se *service.StoreError
			if *dataDir != "" && errors.As(err, &se) && se.Kind == service.ErrConflict {
				log.Printf("graphd: -load %s: %q already recovered from data dir, skipping", path, name)
				continue
			}
			log.Fatalf("graphd: registering %q: %v", name, err)
		}
		log.Printf("graphd: loaded %q from %s (n=%d m=%d)", name, path, g.N(), g.M())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("graphd: serving on %s", *addr)

	// Profiling and expvar bind only here, never on the serving mux: an
	// operator who does not pass -debug-addr exposes no pprof at all,
	// and one who does can firewall the two ports independently.
	if *debugAddr != "" {
		debugSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("graphd: debug listener: %v", err)
			}
		}()
		defer debugSrv.Close()
		log.Printf("graphd: debug endpoints (pprof, expvar) on %s", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("graphd: %v", err)
		}
	case sig := <-sigc:
		log.Printf("graphd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "graphd: shutdown: %v\n", err)
		}
	}
}

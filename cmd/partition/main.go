// Command partition runs the §3.2 partitioners on a graph read from an
// edge-list file (or stdin) and reports the cut each one finds, together
// with the Cheeger bounds that frame the comparison.
//
// Usage:
//
//	gengraph -family dumbbell -clique 12 -path 4 | partition -method all
//	partition -in graph.txt -method metismqi
//	partition -in graph.gsnap            # binary CSR snapshot input
//
// Methods: spectral, multilevel, metismqi, bfs, random, all.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/partition"
	"repro/internal/persist"
	"repro/internal/spectral"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph: edge list (.gz ok) or .gsnap snapshot (default stdin)")
		method = flag.String("method", "all", "spectral|multilevel|metismqi|bfs|random|all")
		seed   = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	g, err := persist.ReadGraphFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d volume=%g connected=%v\n", g.N(), g.M(), g.Volume(), g.IsConnected())

	run := func(name string) {
		switch name {
		case "spectral":
			res, err := partition.Spectral(g, spectral.FiedlerOptions{Seed: *seed})
			if err != nil {
				fmt.Printf("spectral: error: %v\n", err)
				return
			}
			fmt.Printf("spectral:    φ=%.6g |S|=%d  λ₂=%.6g  Cheeger bounds [%.6g, %.6g]\n",
				res.Conductance, len(res.Set), res.Lambda2, res.Lambda2/2, res.CheegerUpper)
		case "multilevel":
			res, err := partition.MultilevelBisect(g, partition.MultilevelOptions{Seed: *seed})
			if err != nil {
				fmt.Printf("multilevel: error: %v\n", err)
				return
			}
			fmt.Printf("multilevel:  φ=%.6g cut=%.6g levels=%d\n", res.Conductance, res.CutWeight, res.Levels)
		case "metismqi":
			res, err := partition.MetisMQI(g, partition.MultilevelOptions{Seed: *seed})
			if err != nil {
				fmt.Printf("metismqi: error: %v\n", err)
				return
			}
			fmt.Printf("metis+mqi:   φ=%.6g |S|=%d rounds=%d\n", res.Conductance, len(res.Set), res.Rounds)
		case "bfs":
			res, err := partition.BFSGrow(g, 0)
			if err != nil {
				fmt.Printf("bfs: error: %v\n", err)
				return
			}
			fmt.Printf("bfs-grow:    φ=%.6g |S|=%d\n", res.Conductance, len(res.Set))
		case "random":
			rng := rand.New(rand.NewSource(*seed))
			set, err := partition.RandomCut(g, rng)
			if err != nil {
				fmt.Printf("random: error: %v\n", err)
				return
			}
			fmt.Printf("random:      φ=%.6g |S|=%d\n", g.ConductanceOfSet(set), len(set))
		default:
			fmt.Fprintf(os.Stderr, "unknown method %q\n", name)
			os.Exit(2)
		}
	}
	if *method == "all" {
		for _, m := range []string{"spectral", "multilevel", "metismqi", "bfs", "random"} {
			run(m)
		}
		return
	}
	run(*method)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "partition: %v\n", err)
	os.Exit(1)
}

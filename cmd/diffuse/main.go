// Command diffuse runs one of the three §3.1 diffusion dynamics from a
// seed node and reports what the approximation computes: the resulting
// distribution's Rayleigh quotient, its distance from equilibrium, and —
// on small graphs — the verification that its operator exactly solves the
// corresponding regularized SDP.
//
// Usage:
//
//	gengraph -family dumbbell -clique 8 -path 2 | diffuse -dynamics pagerank -gamma 0.1 -seednode 0
//	diffuse -in graph.txt -dynamics heatkernel -t 3 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/regsdp"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge list (default stdin)")
		dynamics = flag.String("dynamics", "pagerank", "heatkernel|pagerank|lazywalk")
		seedNode = flag.Int("seednode", 0, "seed node id")
		gamma    = flag.Float64("gamma", 0.1, "PageRank teleportation γ")
		t        = flag.Float64("t", 2, "heat kernel time")
		alpha    = flag.Float64("alpha", 0.6, "lazy walk holding probability")
		k        = flag.Int("k", 10, "lazy walk steps")
		top      = flag.Int("top", 10, "how many top nodes to print")
		verify   = flag.Bool("verify", false, "verify the regularized-SDP equivalence (needs small connected graph)")
	)
	flag.Parse()

	g, err := graph.ReadEdgeListFile(*in)
	if err != nil {
		fatal(err)
	}
	seed, err := diffusion.SeedVector(g.N(), []int{*seedNode})
	if err != nil {
		fatal(err)
	}
	var dist []float64
	var label string
	switch *dynamics {
	case "heatkernel":
		dist, err = diffusion.HeatKernel(g, seed, *t, diffusion.HeatKernelOptions{})
		label = fmt.Sprintf("heat kernel t=%g", *t)
	case "pagerank":
		dist, err = diffusion.PageRank(g, seed, *gamma, diffusion.PageRankOptions{})
		label = fmt.Sprintf("pagerank γ=%g", *gamma)
	case "lazywalk":
		dist, err = diffusion.LazyWalk(g, seed, *alpha, *k)
		label = fmt.Sprintf("lazy walk α=%g k=%d", *alpha, *k)
	default:
		fatal(fmt.Errorf("unknown dynamics %q", *dynamics))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s from node %d on n=%d m=%d\n", label, *seedNode, g.N(), g.M())
	fmt.Printf("TV distance from equilibrium: %.6g\n", diffusion.Equilibrium(g, dist))

	type nodeMass struct {
		u int
		m float64
	}
	nm := make([]nodeMass, g.N())
	for u, m := range dist {
		nm[u] = nodeMass{u, m}
	}
	sort.Slice(nm, func(a, b int) bool { return nm[a].m > nm[b].m })
	fmt.Printf("top %d nodes by mass:\n", *top)
	for i := 0; i < *top && i < len(nm); i++ {
		fmt.Printf("  node %-6d mass %.6g  (deg %g)\n", nm[i].u, nm[i].m, g.Degree(nm[i].u))
	}

	if *verify {
		if g.N() > 500 {
			fatal(fmt.Errorf("-verify needs n ≤ 500 (dense eigendecomposition), got %d", g.N()))
		}
		s, err := regsdp.NewSpectrum(g)
		if err != nil {
			fatal(err)
		}
		var op, sdp *regsdp.Solution
		switch *dynamics {
		case "heatkernel":
			op, err = regsdp.HeatKernelOperator(s, *t)
			if err == nil {
				sdp, err = regsdp.Solve(s, regsdp.Entropy, *t, 0)
			}
		case "pagerank":
			op, err = regsdp.PageRankOperator(s, *gamma)
			if err == nil {
				var eta float64
				eta, err = regsdp.EtaForPageRank(s, *gamma)
				if err == nil {
					sdp, err = regsdp.Solve(s, regsdp.LogDet, eta, 0)
				}
			}
		case "lazywalk":
			op, err = regsdp.LazyWalkOperator(s, *alpha, *k)
			if err == nil {
				var eta, p float64
				eta, p, err = regsdp.EtaForLazyWalk(s, *alpha, *k)
				if err == nil {
					sdp, err = regsdp.Solve(s, regsdp.PNorm, eta, p)
				}
			}
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("regularized-SDP verification: ‖Δweights‖∞ = %.3e (0 ⇒ the dynamics exactly solve the SDP)\n",
			regsdp.MaxWeightDiff(op, sdp))
		fmt.Printf("Tr(𝓛X) = %.6g vs λ₂ = %.6g (regularization gap %.3g)\n",
			sdp.TraceObjective(), s.NontrivialValues()[0], sdp.TraceObjective()-s.NontrivialValues()[0])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "diffuse: %v\n", err)
	os.Exit(1)
}

// Command fig1 reproduces Figure 1 of Mahoney (PODS 2012) end to end:
// it generates a synthetic social-network-like graph (the AtP-DBLP
// substitute), samples clusters at all size scales with the spectral
// (LocalSpectral) and flow-based (Metis+MQI) methods, and renders the
// three size-resolved panels — conductance, average shortest path, and
// external/internal conductance ratio — as ASCII log-log scatter plots.
// With -tsv PREFIX it also writes PREFIX-1a.tsv, PREFIX-1b.tsv and
// PREFIX-1c.tsv for external plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fig1: ")
	n := flag.Int("n", 20000, "number of nodes in the synthetic network")
	seed := flag.Int64("seed", 1, "RNG seed")
	fwd := flag.Float64("fwd", 0.37, "forest-fire forward-burning probability")
	tsv := flag.String("tsv", "", "prefix for TSV output files (empty = none)")
	width := flag.Int("width", 72, "plot width in characters")
	height := flag.Int("height", 20, "plot height in characters")
	workers := flag.Int("workers", 0, "NCP profile worker count (0 = all CPUs, 1 = serial)")
	flag.Parse()

	res, err := experiments.Fig1(experiments.Fig1Config{N: *n, Seed: *seed, FwdProb: *fwd, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	panels := []struct {
		name, title, ylabel, file string
		sel                       func(experiments.ScatterPoint) float64
	}{
		{"1a", "Figure 1(a): size-resolved conductance (lower = better objective)",
			"conductance phi", "1a", func(p experiments.ScatterPoint) float64 { return p.Conductance }},
		{"1b", "Figure 1(b): niceness = average shortest path inside cluster (lower = nicer)",
			"avg shortest path", "1b", func(p experiments.ScatterPoint) float64 { return p.AvgPath }},
		{"1c", "Figure 1(c): niceness = external/internal conductance ratio (lower = nicer)",
			"ext/int conductance", "1c", func(p experiments.ScatterPoint) float64 { return p.ExtIntRatio }},
	}

	for _, panel := range panels {
		series := []plot.Series{
			toSeries("spectral (LocalSpectral)", 's', res.Spectral, panel.sel),
			toSeries("flow (Metis+MQI)", 'f', res.Flow, panel.sel),
		}
		sc := &plot.Scatter{
			Title: panel.title, XLabel: "cluster size (nodes)", YLabel: panel.ylabel,
			Width: *width, Height: *height, LogX: true, LogY: true,
			Series: series,
		}
		out, err := sc.Render()
		if err != nil {
			log.Fatalf("panel %s: %v", panel.name, err)
		}
		fmt.Println(out)
		if *tsv != "" {
			path := fmt.Sprintf("%s-%s.tsv", *tsv, panel.file)
			f, err := os.Create(path)
			if err != nil {
				log.Fatalf("panel %s: %v", panel.name, err)
			}
			if err := plot.WriteTSV(f, series); err != nil {
				f.Close()
				log.Fatalf("panel %s: %v", panel.name, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("panel %s: %v", panel.name, err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	fmt.Println("size-resolved aggregates (the Figure 1 reading is per size, not pooled):")
	fmt.Printf("  1a  conductance envelope ratio flow/spectral (geo-mean over buckets): %.3f  (<1 = flow wins)\n",
		res.EnvelopeRatioGeoMean)
	fmt.Printf("  1a  fraction of size buckets where flow's best phi wins: %.2f\n", res.FracFlowWinsPhi)
	fmt.Printf("  1b  fraction of size buckets where spectral's median path is nicer: %.2f\n",
		res.FracSpectralWinsNicePth)
	fmt.Println("pooled medians (size-mix-confounded; for reference only):")
	fmt.Printf("  phi      spectral %.4f   flow %.4f\n", res.MedianPhiSpectral, res.MedianPhiFlow)
	fmt.Printf("  avg path spectral %.3f   flow %.3f\n", res.MedianPathSpectral, res.MedianPathFlow)
	fmt.Printf("  ext/int  spectral %.3f   flow %.3f\n", res.MedianRatioSpectral, res.MedianRatioFlow)
}

func toSeries(name string, glyph byte, pts []experiments.ScatterPoint, sel func(experiments.ScatterPoint) float64) plot.Series {
	s := plot.Series{Name: name, Glyph: glyph}
	for _, p := range pts {
		s.Xs = append(s.Xs, float64(p.Size))
		s.Ys = append(s.Ys, sel(p))
	}
	return s
}

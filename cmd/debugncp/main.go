// Command debugncp prints per-bucket minimum conductance for the spectral
// and flow profiles side by side (diagnostic tool).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/gen"
	"repro/internal/ncp"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ForestFire(gen.ForestFireConfig{N: 2000, FwdProb: 0.37, Ambs: 1}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d m=%d\n", g.N(), g.M())
	sp, err := ncp.SpectralProfile(g, ncp.SpectralConfig{Seeds: 20}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fl, err := ncp.FlowProfile(g, ncp.FlowConfig{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	type best struct{ sp, fl float64 }
	buckets := map[int]*best{}
	get := func(b int) *best {
		if buckets[b] == nil {
			buckets[b] = &best{sp: -1, fl: -1}
		}
		return buckets[b]
	}
	bucketOf := func(size int) int {
		b := 0
		for s := size; s > 1; s /= 2 {
			b++
		}
		return b
	}
	for _, c := range sp.Clusters {
		e := get(bucketOf(len(c.Nodes)))
		if e.sp < 0 || c.Conductance < e.sp {
			e.sp = c.Conductance
		}
	}
	for _, c := range fl.Clusters {
		e := get(bucketOf(len(c.Nodes)))
		if e.fl < 0 || c.Conductance < e.fl {
			e.fl = c.Conductance
		}
	}
	var keys []int
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("%8s %12s %12s\n", "size~2^b", "spectral", "flow")
	for _, k := range keys {
		e := buckets[k]
		fmt.Printf("%8d %12.5f %12.5f\n", 1<<k, e.sp, e.fl)
	}
	fmt.Printf("clusters: spectral %d, flow %d\n", len(sp.Clusters), len(fl.Clusters))
}

// graphlint runs the repo's custom invariant analyzers (internal/lint)
// over Go package patterns, printing one line per finding and exiting
// nonzero if any finding survives the //lint:ignore suppressions.
//
// Usage:
//
//	graphlint [-list] [-only name[,name]] [packages]
//
// With no package arguments it analyzes ./.... Exit codes: 0 clean,
// 1 findings, 2 load or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphlint [-list] [-only name[,name]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "graphlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphlint: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "graphlint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
}

// Command promcheck lints a Prometheus text exposition read from stdin
// (or a file argument) with the strict internal/promtext rules and
// exits non-zero on the first problem. CI uses it to gate graphd's
// hand-rolled /metrics encoder:
//
//	curl -fsS localhost:8080/metrics | promcheck
//	promcheck scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/promtext"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	if len(args) > 1 {
		fmt.Fprintln(stderr, "usage: promcheck [exposition-file]")
		return 2
	}
	in := stdin
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(stderr, "promcheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	errs := promtext.Lint(in)
	for _, e := range errs {
		fmt.Fprintf(stderr, "promcheck: %v\n", e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(stderr, "promcheck: %d problem(s)\n", len(errs))
		return 1
	}
	return 0
}

// Command experiments runs the full paper-reproduction suite — Figure 1
// (all three panels) and every quantitative §3 claim — and prints the
// tables EXPERIMENTS.md records. All runs are deterministic for a given
// -seed.
//
// Usage:
//
//	experiments                  # everything, full size (minutes)
//	experiments -only fig1 -n 5000
//	experiments -only sec31,sec33
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "RNG seed")
		only = flag.String("only", "all", "comma-separated subset: fig1,sec31,sec32,sec33")
		n    = flag.Int("n", 20000, "Figure 1 network size")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		want[strings.TrimSpace(k)] = true
	}
	all := want["all"]

	if all || want["sec31"] {
		results, err := experiments.Sec31Equivalence(*seed)
		check(err)
		for _, r := range results {
			fmt.Println(r.Table())
		}
		rows, err := experiments.Sec31EarlyStopping(*seed)
		check(err)
		fmt.Println(experiments.Sec31EarlyStopTable(rows))
	}
	if all || want["sec32"] {
		rows, err := experiments.Sec32CheegerSaturation(*seed)
		check(err)
		fmt.Println(experiments.Sec32CheegerTable(rows))
		qn, err := experiments.Sec32QualityNiceness(*seed)
		check(err)
		fmt.Println(qn.Table())
	}
	if all || want["sec33"] {
		rows, err := experiments.Sec33LocalRuntime(*seed)
		check(err)
		fmt.Println(experiments.Sec33LocalityTable(rows))
		ch, err := experiments.Sec33LocalCheeger(*seed)
		check(err)
		fmt.Println(experiments.Sec33CheegerTable(ch))
		mov, err := experiments.Sec33MOVvsPush(*seed)
		check(err)
		fmt.Println(experiments.Sec33MOVTable(mov))
		sd, err := experiments.Sec33SeedNotInCluster(*seed)
		check(err)
		fmt.Println(sd.Table())
	}
	if all || want["fig1"] {
		fmt.Printf("running Figure 1 on a %d-node forest-fire network (this is the long one)...\n\n", *n)
		res, err := experiments.Fig1(experiments.Fig1Config{N: *n, Seed: *seed})
		check(err)
		fmt.Println(res.Fig1aTable())
		fmt.Println(res.Fig1bTable())
		fmt.Println(res.Fig1cTable())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

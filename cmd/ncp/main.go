// Command ncp computes the Network Community Profile of a graph with
// both Figure-1 methods and prints the size-resolved minimum-conductance
// envelopes plus the niceness measures, i.e. the data behind all three
// panels of Figure 1.
//
// Usage:
//
//	gengraph -family forestfire -n 20000 | ncp
//	ncp -in graph.txt -method spectral -minsize 8 -maxsize 1024
//	ncp -in graph.gsnap          # binary CSR snapshot, parsed-once input
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/ncp"
	"repro/internal/persist"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph: edge list (.gz ok) or .gsnap snapshot (default stdin)")
		method  = flag.String("method", "both", "spectral|flow|both")
		seeds   = flag.Int("seeds", 20, "spectral profile seeds per scale")
		minSize = flag.Int("minsize", 8, "min cluster size for niceness evaluation")
		maxSize = flag.Int("maxsize", 1024, "max cluster size for niceness evaluation")
		seed    = flag.Int64("seed", 1, "RNG seed")
		workers = flag.Int("workers", 0, "profile worker count (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	g, err := persist.ReadGraphFile(*in)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("graph: n=%d m=%d volume=%g\n", g.N(), g.M(), g.Volume())

	report := func(name string, prof *ncp.Profile) {
		fmt.Printf("\n%s profile: %d clusters sampled\n", name, len(prof.Clusters))
		fmt.Println("size-resolved min conductance (NCP envelope):")
		for _, p := range prof.MinEnvelope() {
			fmt.Printf("  size≈%-8d min φ = %.6g\n", p.Size, p.Conductance)
		}
		ms, err := ncp.EvaluateProfile(g, prof, *minSize, *maxSize)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("niceness over sizes [%d,%d] (%d clusters): size φ avg-path ext/int\n",
			*minSize, *maxSize, len(ms))
		for _, m := range ms {
			fmt.Printf("  %-6d %-10.5g %-8.4g %.4g\n", m.Size, m.Conductance, m.AvgPathLen, m.ExtIntRatio)
		}
	}
	if *method == "spectral" || *method == "both" {
		prof, err := ncp.SpectralProfile(g, ncp.SpectralConfig{Seeds: *seeds, Workers: *workers}, rng)
		if err != nil {
			fatal(err)
		}
		report("spectral (LocalSpectral)", prof)
	}
	if *method == "flow" || *method == "both" {
		prof, err := ncp.FlowProfile(g, ncp.FlowConfig{Workers: *workers}, rng)
		if err != nil {
			fatal(err)
		}
		report("flow (Metis+MQI)", prof)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ncp: %v\n", err)
	os.Exit(1)
}

// Package client is the Go SDK for the graphd HTTP service. It speaks
// the versioned wire contract defined in pkg/api: every call takes a
// context, sends and receives the api request/response types, and
// surfaces failures as *api.Error values so callers can branch on
// machine-readable codes.
//
//	c, err := client.New("http://localhost:8080",
//		client.WithTimeout(10*time.Second),
//		client.WithRetries(3),
//	)
//	info, err := c.Graphs.Generate(ctx, "demo", api.GenerateRequest{
//		Family: "ring_of_cliques", K: 16, CliqueN: 12,
//	})
//	res, err := c.Graphs.PPR(ctx, "demo", api.PPRRequest{Seeds: []int{0}})
//
// Transient failures — connection errors and 5xx responses — are
// retried with exponential backoff up to the configured attempt budget;
// 4xx responses are never retried. Long-running work goes through
// c.Jobs: Submit enqueues, Wait polls to a terminal state, Result
// decodes the typed payload.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/pkg/api"
)

// Client is a graphd API client. Create with New; the zero value is not
// usable. Clients are safe for concurrent use.
type Client struct {
	baseURL    string
	httpClient *http.Client
	retries    int           // extra attempts after the first
	backoff    time.Duration // first retry delay, doubled per attempt
	maxBackoff time.Duration
	gzipUpload bool
	serverTO   time.Duration // ?timeout_ms= on query endpoints; 0 = server default
	pollEvery  time.Duration // Jobs.Wait poll interval

	// Graphs exposes the graph lifecycle and the synchronous query
	// endpoints; Jobs the async job queue.
	Graphs *GraphsService
	Jobs   *JobsService
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default: a
// dedicated client with a 30s overall timeout).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpClient = h } }

// WithTimeout sets the underlying HTTP client's overall per-attempt
// timeout. Use request contexts for per-call deadlines.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.httpClient.Timeout = d } }

// WithRetries sets how many times a failed call is retried beyond the
// first attempt (default 2). 5xx responses are retried for every
// method (graphd's mutating endpoints reject rather than partially
// apply, so a received 5xx is safe to replay); connection errors —
// where the first attempt may have committed before the response was
// lost — are retried only for GETs. 4xx responses and context
// cancellation are never retried.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the first retry delay (default 100ms); each further
// retry doubles it, capped at max.
func WithBackoff(first, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = first, max }
}

// WithGzipUpload makes Graphs.Load / Graphs.LoadFile compress edge-list
// bodies with gzip (Content-Encoding: gzip). The server accepts both
// forms; enabling this trades CPU for bandwidth on large graphs.
func WithGzipUpload() Option { return func(c *Client) { c.gzipUpload = true } }

// WithServerTimeout asks the server to bound each synchronous query at
// d (sent as ?timeout_ms=). The server clamps it to its own limits.
func WithServerTimeout(d time.Duration) Option { return func(c *Client) { c.serverTO = d } }

// WithPollInterval sets how often Jobs.Wait polls (default 50ms).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.pollEvery = d } }

// New returns a Client for the graphd instance at baseURL (scheme and
// host, e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q must be scheme://host[:port]", baseURL)
	}
	c := &Client{
		baseURL:    strings.TrimRight(baseURL, "/"),
		httpClient: &http.Client{Timeout: 30 * time.Second},
		retries:    2,
		backoff:    100 * time.Millisecond,
		maxBackoff: 5 * time.Second,
		pollEvery:  50 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	c.Graphs = &GraphsService{c: c}
	c.Jobs = &JobsService{c: c}
	return c, nil
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.baseURL }

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil, &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition from GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	body, _, err := c.doRaw(ctx, http.MethodGet, "/metrics", nil, nil, "")
	return string(body), err
}

// DebugQueries fetches the server's recent-query trace from
// GET /debug/queries, newest first. An empty list means the trace is
// disabled or no queries have completed yet.
func (c *Client) DebugQueries(ctx context.Context) ([]api.DebugQuery, error) {
	var out api.DebugQueriesResponse
	err := c.doJSON(ctx, http.MethodGet, "/debug/queries", nil, nil, &out)
	return out.Queries, err
}

// v1 joins path segments under the API version prefix, escaping each.
func v1(segments ...string) string {
	var b strings.Builder
	b.WriteString("/" + api.Version)
	for _, s := range segments {
		b.WriteString("/")
		b.WriteString(url.PathEscape(s))
	}
	return b.String()
}

// queryValues returns the shared query parameters for synchronous query
// endpoints (the server-side timeout override, when configured).
func (c *Client) queryValues() url.Values {
	if c.serverTO <= 0 {
		return nil
	}
	q := url.Values{}
	q.Set("timeout_ms", strconv.FormatInt(c.serverTO.Milliseconds(), 10))
	return q
}

// doJSON marshals in (when non-nil), performs the call with retries,
// and unmarshals the response into out (when non-nil).
func (c *Client) doJSON(ctx context.Context, method, path string, q url.Values, in, out any) error {
	var body []byte
	contentType := ""
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s %s request: %w", method, path, err)
		}
		contentType = "application/json"
	}
	data, _, err := c.doRaw(ctx, method, path, q, body, contentType)
	if err != nil {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// doRaw performs one logical call with the retry/backoff policy: the
// request body is replayed from bytes on each attempt, connection
// errors and 5xx responses back off and retry, anything else returns
// immediately. On HTTP failure the returned error is an *api.Error.
func (c *Client) doRaw(ctx context.Context, method, path string, q url.Values, body []byte, contentType string) ([]byte, http.Header, error) {
	u := c.baseURL + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt); err != nil {
				return nil, nil, err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient.Do(req)
		if err != nil {
			// Connection-level failure. The caller's context error wins,
			// and only idempotent GETs are replayed: a lost response to a
			// POST may mean the server already committed the work, and
			// replaying it would duplicate jobs or turn a successful
			// graph load into a spurious conflict.
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if method != http.MethodGet {
				return nil, nil, lastErr
			}
			continue
		}
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: reading response: %w", method, path, readErr)
			continue
		}
		if resp.StatusCode >= 400 {
			apiErr := decodeError(resp.StatusCode, data)
			if resp.StatusCode >= 500 {
				lastErr = apiErr
				continue
			}
			return nil, nil, apiErr
		}
		return data, resp.Header, nil
	}
	return nil, nil, lastErr
}

// doStream performs a GET with the usual connection-error/5xx retry
// policy but hands back the undecoded response body for the caller to
// stream, so large downloads (snapshot export) never buffer in memory.
// The caller must Close the returned body.
func (c *Client) doStream(ctx context.Context, path string) (io.ReadCloser, error) {
	u := c.baseURL + path
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, fmt.Errorf("client: GET %s: %w", path, err)
		}
		resp, err := c.httpClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: GET %s: %w", path, err)
			continue
		}
		if resp.StatusCode >= 400 {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			apiErr := decodeError(resp.StatusCode, data)
			if resp.StatusCode >= 500 {
				lastErr = apiErr
				continue
			}
			return nil, apiErr
		}
		return resp.Body, nil
	}
	return nil, lastErr
}

// sleep blocks for the attempt's backoff delay or until ctx is done.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.backoff << (attempt - 1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeError turns a non-2xx response into an *api.Error: the server's
// envelope when the body carries one, otherwise an error synthesized
// from the HTTP status (e.g. a proxy error page).
func decodeError(status int, body []byte) *api.Error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.Status = status
		return env.Error
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	ae := api.Errorf(api.CodeForStatus(status), "%s", msg)
	ae.Status = status
	return ae
}

// IsRetryable reports whether err is the kind of failure worth
// retrying: a 5xx *api.Error (including unavailable backpressure) or a
// connection-level *url.Error. Useful for callers layering their own
// retry loops (e.g. waiting for a daemon to boot). Context
// cancellation and local encode/decode failures are not retryable.
func IsRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae.Status >= 500 || ae.Code == api.CodeUnavailable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

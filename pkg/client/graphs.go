package client

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"repro/pkg/api"
)

// QueryOption adjusts a single synchronous query call (PPR,
// LocalCluster, Diffuse) by editing its URL query parameters.
type QueryOption func(url.Values)

// WithWorkStats asks the server to attach its kernel work accounting to
// the response (the ?debug=work switch): the returned response's Work
// field carries pushes, work volume and support for the diffusion that
// answered the query. Responses with and without work stats are cached
// separately by the server.
func WithWorkStats() QueryOption {
	return func(q url.Values) { q.Set("debug", "work") }
}

// CreateOption adjusts a graph-creating call (Load, Import, Generate)
// by editing its URL query parameters.
type CreateOption func(url.Values)

// WithBackend asks the server to serve the new graph from the given
// storage backend ("heap", "compact" or "mmap") instead of the server's
// default. The mmap backend needs the server to run with a data
// directory.
func WithBackend(backend api.GraphBackend) CreateOption {
	return func(q url.Values) { q.Set("backend", string(backend)) }
}

// createValues builds the query parameters for a graph-creating call.
func createValues(opts []CreateOption) url.Values {
	if len(opts) == 0 {
		return nil
	}
	q := url.Values{}
	for _, o := range opts {
		o(q)
	}
	return q
}

// queryValuesOpts extends the client-wide query parameters with
// per-call options.
func (c *Client) queryValuesOpts(opts []QueryOption) url.Values {
	q := c.queryValues()
	if q == nil && len(opts) > 0 {
		q = url.Values{}
	}
	for _, o := range opts {
		o(q)
	}
	return q
}

// GraphsService covers the /v1/graphs endpoint family: the graph
// lifecycle (load, generate, stream/append/seal, delete, list) and the
// synchronous strongly-local queries (ppr, localcluster, diffuse,
// sweepcut, stats).
type GraphsService struct {
	c *Client
}

// List returns info for every stored graph, sorted by name.
func (s *GraphsService) List(ctx context.Context) ([]api.GraphInfo, error) {
	var out api.GraphList
	err := s.c.doJSON(ctx, http.MethodGet, v1("graphs"), nil, nil, &out)
	return out.Graphs, err
}

// Load uploads an edge list (the text format graph.ReadEdgeList
// accepts) and registers it as a sealed graph named name. The body is
// buffered so the call can be retried; for very large graphs prefer
// LoadFile, and enable WithGzipUpload to compress the wire transfer.
func (s *GraphsService) Load(ctx context.Context, name string, edgeList io.Reader, opts ...CreateOption) (api.GraphInfo, error) {
	data, err := io.ReadAll(edgeList)
	if err != nil {
		return api.GraphInfo{}, fmt.Errorf("client: reading edge list: %w", err)
	}
	return s.upload(ctx, name, data, false, opts)
}

// LoadFile uploads the edge-list file at path (plain or .gz) as a
// sealed graph named name.
func (s *GraphsService) LoadFile(ctx context.Context, name, path string, opts ...CreateOption) (api.GraphInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return api.GraphInfo{}, fmt.Errorf("client: %w", err)
	}
	// Already-compressed files ship as-is; the server sniffs the gzip
	// magic bytes.
	return s.upload(ctx, name, data, strings.HasSuffix(path, ".gz"), opts)
}

// upload POSTs edge-list bytes, gzip-compressing them when the client
// is configured for it and the payload is not already compressed.
func (s *GraphsService) upload(ctx context.Context, name string, data []byte, compressed bool, opts []CreateOption) (api.GraphInfo, error) {
	contentType := "text/plain"
	if s.c.gzipUpload && !compressed {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			return api.GraphInfo{}, fmt.Errorf("client: compressing edge list: %w", err)
		}
		if err := zw.Close(); err != nil {
			return api.GraphInfo{}, fmt.Errorf("client: compressing edge list: %w", err)
		}
		data = buf.Bytes()
	}
	body, _, err := s.c.doRaw(ctx, http.MethodPost, v1("graphs", name), createValues(opts), data, contentType)
	if err != nil {
		return api.GraphInfo{}, err
	}
	var info api.GraphInfo
	if err := unmarshalInto(body, &info); err != nil {
		return api.GraphInfo{}, err
	}
	return info, nil
}

// Get returns the descriptive record (state, sizes, persistence) for
// one graph, sealed or streaming.
func (s *GraphsService) Get(ctx context.Context, name string) (api.GraphInfo, error) {
	var out api.GraphInfo
	err := s.c.doJSON(ctx, http.MethodGet, v1("graphs", name), nil, nil, &out)
	return out, err
}

// Export downloads the sealed graph as a binary GSNAP snapshot
// (application/octet-stream), streaming it into w without buffering
// the whole file, and returns the byte count. The snapshot is the
// exact CSR of the stored graph; importing it (here or on another
// server) reproduces the graph bit-for-bit. A download cut short by a
// failure mid-stream returns an error, and a partial file never
// imports: every section is checksummed.
func (s *GraphsService) Export(ctx context.Context, name string, w io.Writer) (int64, error) {
	body, err := s.c.doStream(ctx, v1("graphs", name, "snapshot"))
	if err != nil {
		return 0, err
	}
	defer body.Close()
	n, err := io.Copy(w, body)
	if err != nil {
		return n, fmt.Errorf("client: downloading snapshot: %w", err)
	}
	return n, nil
}

// ExportFile downloads the sealed graph's snapshot to path.
func (s *GraphsService) ExportFile(ctx context.Context, name, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	n, err := s.Export(ctx, name, f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("client: closing %s: %w", path, cerr)
	}
	return n, err
}

// Import uploads a GSNAP snapshot and registers it as a sealed graph
// named name. The server validates the checksums and CSR invariants
// before storing anything.
func (s *GraphsService) Import(ctx context.Context, name string, snapshot io.Reader, opts ...CreateOption) (api.GraphInfo, error) {
	data, err := io.ReadAll(snapshot)
	if err != nil {
		return api.GraphInfo{}, fmt.Errorf("client: reading snapshot: %w", err)
	}
	body, _, err := s.c.doRaw(ctx, http.MethodPut, v1("graphs", name, "snapshot"), createValues(opts), data, "application/octet-stream")
	if err != nil {
		return api.GraphInfo{}, err
	}
	var info api.GraphInfo
	if err := unmarshalInto(body, &info); err != nil {
		return api.GraphInfo{}, err
	}
	return info, nil
}

// ImportFile uploads the snapshot file at path as a sealed graph.
func (s *GraphsService) ImportFile(ctx context.Context, name, path string, opts ...CreateOption) (api.GraphInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return api.GraphInfo{}, fmt.Errorf("client: %w", err)
	}
	defer f.Close()
	return s.Import(ctx, name, f, opts...)
}

// Generate asks the server to synthesize a graph named name from one of
// the generator families.
func (s *GraphsService) Generate(ctx context.Context, name string, req api.GenerateRequest, opts ...CreateOption) (api.GraphInfo, error) {
	var out api.GraphInfo
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "generate"), createValues(opts), &req, &out)
	return out, err
}

// Stream opens an incremental graph on nodes vertices; feed it with
// AppendEdges and freeze it with Seal.
func (s *GraphsService) Stream(ctx context.Context, name string, nodes int) (api.GraphInfo, error) {
	var out api.GraphInfo
	req := api.StreamCreateRequest{Nodes: nodes}
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "stream"), nil, &req, &out)
	return out, err
}

// AppendEdges adds a batch of edges to a streaming graph, returning how
// many were appended. The batch is all-or-nothing.
func (s *GraphsService) AppendEdges(ctx context.Context, name string, edges []api.StreamEdge) (int, error) {
	var out api.EdgeBatchResponse
	req := api.EdgeBatchRequest{Edges: edges}
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "edges"), nil, &req, &out)
	return out.Appended, err
}

// Seal freezes a streaming graph into its immutable, queryable form.
func (s *GraphsService) Seal(ctx context.Context, name string) (api.GraphInfo, error) {
	var out api.GraphInfo
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "seal"), nil, nil, &out)
	return out, err
}

// Delete removes the named graph (sealed or streaming).
func (s *GraphsService) Delete(ctx context.Context, name string) error {
	return s.c.doJSON(ctx, http.MethodDelete, v1("graphs", name), nil, nil, nil)
}

// Stats summarizes the named sealed graph.
func (s *GraphsService) Stats(ctx context.Context, name string) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := s.c.doJSON(ctx, http.MethodGet, v1("graphs", name, "stats"), s.c.queryValues(), nil, &out)
	return out, err
}

// PPR runs the ACL push personalized-PageRank query. Pass
// WithWorkStats() to receive the kernel work accounting in out.Work.
func (s *GraphsService) PPR(ctx context.Context, name string, req api.PPRRequest, opts ...QueryOption) (api.PPRResponse, error) {
	var out api.PPRResponse
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "ppr"), s.c.queryValuesOpts(opts), &req, &out)
	return out, err
}

// PPRBatch runs one independent single-seed PPR push per entry of
// req.Seeds in a single request, batched on the server's kernel batch
// engine. Each per-seed result is byte-identical to what PPR would
// return for {"seeds":[s]} with the same parameters. Pass
// WithWorkStats() to receive the aggregated work accounting in
// out.Work.
func (s *GraphsService) PPRBatch(ctx context.Context, name string, req api.PPRBatchRequest, opts ...QueryOption) (api.PPRBatchResponse, error) {
	var out api.PPRBatchResponse
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "ppr:batch"), s.c.queryValuesOpts(opts), &req, &out)
	return out, err
}

// LocalCluster runs one of the strongly-local clustering methods
// (ppr, nibble, heat) around the seed set. Pass WithWorkStats() to
// receive the kernel work accounting in out.Work.
func (s *GraphsService) LocalCluster(ctx context.Context, name string, req api.LocalClusterRequest, opts ...QueryOption) (api.LocalClusterResponse, error) {
	var out api.LocalClusterResponse
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "localcluster"), s.c.queryValuesOpts(opts), &req, &out)
	return out, err
}

// LocalClusterBatch runs one independent single-seed local clustering
// per entry of req.Seeds (method and budget knobs shared), batched on
// the server's kernel batch engine. Pass WithWorkStats() to receive
// the aggregated work accounting in out.Work.
func (s *GraphsService) LocalClusterBatch(ctx context.Context, name string, req api.LocalClusterBatchRequest, opts ...QueryOption) (api.LocalClusterBatchResponse, error) {
	var out api.LocalClusterBatchResponse
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "localcluster:batch"), s.c.queryValuesOpts(opts), &req, &out)
	return out, err
}

// Diffuse runs a dense diffusion (heat kernel, PageRank or lazy walk).
// Pass WithWorkStats() to receive the (coarse, dense) work accounting
// in out.Work.
func (s *GraphsService) Diffuse(ctx context.Context, name string, req api.DiffuseRequest, opts ...QueryOption) (api.DiffuseResponse, error) {
	var out api.DiffuseResponse
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "diffuse"), s.c.queryValuesOpts(opts), &req, &out)
	return out, err
}

// SweepCut sweeps a caller-provided vector over the graph and returns
// the best prefix cut.
func (s *GraphsService) SweepCut(ctx context.Context, name string, req api.SweepCutRequest) (api.SweepInfo, error) {
	var out api.SweepInfo
	err := s.c.doJSON(ctx, http.MethodPost, v1("graphs", name, "sweepcut"), s.c.queryValues(), &req, &out)
	return out, err
}

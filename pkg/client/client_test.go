package client

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

func newTestClient(t *testing.T, h http.Handler, opts ...Option) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "localhost:8080", "://x", "http://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted a bad base URL", bad)
		}
	}
	if _, err := New("http://localhost:8080/"); err != nil {
		t.Fatalf("New rejected a good base URL: %v", err)
	}
}

func TestErrorEnvelopeDecoding(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Errorf(api.CodeNotFound, "graph %q not found", "ghost"),
		})
	}), WithRetries(0))
	_, err := c.Graphs.Stats(context.Background(), "ghost")
	if !api.IsNotFound(err) {
		t.Fatalf("err = %v, want not_found", err)
	}
	var ae *api.Error
	if ok := asAPIError(err, &ae); !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("error should carry the HTTP status: %+v", err)
	}
}

func asAPIError(err error, target **api.Error) bool {
	if e, ok := err.(*api.Error); ok {
		*target = e
		return true
	}
	return false
}

func TestErrorWithoutEnvelopeFallsBackToStatus(t *testing.T) {
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain proxy error", http.StatusConflict)
	}), WithRetries(0))
	_, err := c.Graphs.Seal(context.Background(), "g")
	if !api.IsConflict(err) {
		t.Fatalf("err = %v, want conflict synthesized from status", err)
	}
	if !strings.Contains(err.Error(), "plain proxy error") {
		t.Fatalf("err should keep the body text: %v", err)
	}
}

func TestRetryOn5xxThenSuccess(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
	}), WithRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond))
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v; want ok after retries", h, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s then success)", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}), WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	var ae *api.Error
	if !asAPIError(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %#v, want *api.Error with status 500", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestNo4xxRetry(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Errorf(api.CodeInvalidArgument, "nope")})
	}), WithRetries(5), WithBackoff(time.Millisecond, time.Millisecond))
	_, err := c.Graphs.PPR(context.Background(), "g", api.PPRRequest{Seeds: []int{0}})
	if !api.IsInvalidArgument(err) {
		t.Fatalf("err = %v, want invalid_argument", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx was retried: %d calls", got)
	}
}

func TestRetryOnConnectionError(t *testing.T) {
	// A server that dies after its first (failed) response exercises the
	// transport-error path: the listener is closed, so every attempt
	// fails at dial time and the retry budget drains.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	c, err := New(url, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("want connection error")
	}
	// Backoff must have run between attempts: 1ms + 2ms floors.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("retries returned after %v; backoff did not run", elapsed)
	}
	if _, err := c.Health(context.Background()); !IsRetryable(err) {
		t.Fatalf("a connection error should classify as retryable: %v", err)
	}
}

// failingTransport counts attempts and fails them all at dial level.
type failingTransport struct{ calls atomic.Int32 }

func (f *failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	f.calls.Add(1)
	return nil, fmt.Errorf("dial tcp: connection refused")
}

func TestNoTransportRetryForNonGET(t *testing.T) {
	// Non-GET calls must NOT be replayed on connection errors: the lost
	// response may have committed server-side work (duplicate jobs,
	// double graph loads). GETs, by contrast, drain the retry budget.
	ft := &failingTransport{}
	c, err := New("http://graphd.invalid",
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetries(3), WithBackoff(time.Microsecond, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Jobs.Submit(context.Background(), api.JobSubmitRequest{Type: "ncp"}); err == nil {
		t.Fatal("want connection error")
	}
	if got := ft.calls.Load(); got != 1 {
		t.Fatalf("POST saw %d attempts, want 1 (no transport-error replay)", got)
	}

	ft.calls.Store(0)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("want connection error")
	}
	if got := ft.calls.Load(); got != 4 {
		t.Fatalf("GET saw %d attempts, want 4 (1 + 3 retries)", got)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	var calls atomic.Int32
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}), WithRetries(100), WithBackoff(50*time.Millisecond, time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got > 3 {
		t.Fatalf("context cancellation did not stop the retry loop: %d calls", got)
	}
}

func TestGzipUpload(t *testing.T) {
	got := make(chan string, 1)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The server sniffs gzip by magic bytes, like graphd does.
		var rd io.Reader = r.Body
		buf := make([]byte, 2)
		n, _ := io.ReadFull(r.Body, buf)
		if n == 2 && buf[0] == 0x1f && buf[1] == 0x8b {
			zr, err := gzip.NewReader(io.MultiReader(strings.NewReader(string(buf)), r.Body))
			if err != nil {
				t.Errorf("gunzip: %v", err)
				return
			}
			rd = zr
		} else {
			rd = io.MultiReader(strings.NewReader(string(buf[:n])), r.Body)
		}
		body, _ := io.ReadAll(rd)
		got <- string(body)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(api.GraphInfo{Name: "g", Sealed: true, Nodes: 3, Edges: 2})
	})

	const edges = "0 1\n1 2\n"
	// Without the option the body travels verbatim...
	plain, _ := newTestClient(t, handler, WithRetries(0))
	if _, err := plain.Graphs.Load(context.Background(), "g", strings.NewReader(edges)); err != nil {
		t.Fatal(err)
	}
	if body := <-got; body != edges {
		t.Fatalf("plain upload body = %q", body)
	}
	// ...with it the server receives a gzip stream that inflates back.
	zipped, _ := newTestClient(t, handler, WithRetries(0), WithGzipUpload())
	info, err := zipped.Graphs.Load(context.Background(), "g", strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	if body := <-got; body != edges {
		t.Fatalf("gzip upload inflated to %q", body)
	}
	if !info.Sealed || info.Nodes != 3 {
		t.Fatalf("load response: %+v", info)
	}
}

func TestServerTimeoutQueryParam(t *testing.T) {
	seen := make(chan string, 1)
	c, _ := newTestClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen <- r.URL.Query().Get("timeout_ms")
		json.NewEncoder(w).Encode(api.PPRResponse{})
	}), WithRetries(0), WithServerTimeout(1500*time.Millisecond))
	if _, err := c.Graphs.PPR(context.Background(), "g", api.PPRRequest{Seeds: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got != "1500" {
		t.Fatalf("timeout_ms = %q, want 1500", got)
	}
}

// fakeJobServer flips a job from running to done after `polls` GETs.
func fakeJobServer(polls int32, final api.JobStatus, result string) http.Handler {
	var gets atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobView{ID: "j1", Status: api.JobQueued})
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		status := api.JobRunning
		if gets.Add(1) > polls {
			status = final
		}
		json.NewEncoder(w).Encode(api.JobView{ID: "j1", Status: status})
	})
	mux.HandleFunc("GET /v1/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, result)
	})
	return mux
}

func TestJobsWaitPollsToTerminal(t *testing.T) {
	c, _ := newTestClient(t, fakeJobServer(3, api.JobDone, `{"nodes":9,"edges":12}`),
		WithRetries(0), WithPollInterval(time.Millisecond))
	view, err := c.Jobs.Submit(context.Background(), api.JobSubmitRequest{Type: "ncp", Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	var res api.NCPJobResult
	fin, err := c.Jobs.WaitResult(context.Background(), view.ID, &res)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != api.JobDone || res.Nodes != 9 || res.EdgesM != 12 {
		t.Fatalf("WaitResult: %+v, %+v", fin, res)
	}
}

func TestJobsWaitSurfacesFailureAsStatusNotError(t *testing.T) {
	c, _ := newTestClient(t, fakeJobServer(1, api.JobFailed, ""),
		WithRetries(0), WithPollInterval(time.Millisecond))
	view, err := c.Jobs.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait on a failed job must not error at transport level: %v", err)
	}
	if view.Status != api.JobFailed {
		t.Fatalf("status = %s, want failed", view.Status)
	}
	// WaitResult, by contrast, converts the failure into a conflict.
	if _, err := c.Jobs.WaitResult(context.Background(), "j1", &struct{}{}); !api.IsConflict(err) {
		t.Fatalf("WaitResult err = %v, want conflict", err)
	}
}

func TestJobsWaitHonorsContext(t *testing.T) {
	// The job never finishes; Wait must stop when the context does.
	c, _ := newTestClient(t, fakeJobServer(1<<30, api.JobDone, ""),
		WithRetries(0), WithPollInterval(time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Jobs.Wait(ctx, "j1")
	if err == nil {
		t.Fatal("want context error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait ignored the context deadline")
	}
}

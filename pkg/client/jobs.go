package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/pkg/api"
)

// JobsService covers the /v1/jobs endpoint family: the async queue for
// the expensive global computations (NCP profiles, partitions, fig1).
type JobsService struct {
	c *Client
}

// Submit enqueues a job and returns its initial snapshot. Build the
// request by hand or with api.NewJob:
//
//	req, _ := api.NewJob("ncp", "web", &api.NCPJobParams{Method: "spectral"})
//	view, err := c.Jobs.Submit(ctx, req)
func (s *JobsService) Submit(ctx context.Context, req api.JobSubmitRequest) (api.JobView, error) {
	var out api.JobView
	err := s.c.doJSON(ctx, http.MethodPost, v1("jobs"), nil, &req, &out)
	return out, err
}

// Get returns the current snapshot of one job.
func (s *JobsService) Get(ctx context.Context, id string) (api.JobView, error) {
	var out api.JobView
	err := s.c.doJSON(ctx, http.MethodGet, v1("jobs", id), nil, nil, &out)
	return out, err
}

// List returns snapshots of all retained jobs in submission order.
func (s *JobsService) List(ctx context.Context) ([]api.JobView, error) {
	var out api.JobList
	err := s.c.doJSON(ctx, http.MethodGet, v1("jobs"), nil, nil, &out)
	return out.Jobs, err
}

// Cancel aborts a queued or running job and returns its snapshot.
func (s *JobsService) Cancel(ctx context.Context, id string) (api.JobView, error) {
	var out api.JobView
	err := s.c.doJSON(ctx, http.MethodDelete, v1("jobs", id), nil, nil, &out)
	return out, err
}

// ResultRaw returns a finished job's result payload as raw JSON. The
// server answers 409 conflict while the job is still queued or running.
func (s *JobsService) ResultRaw(ctx context.Context, id string) (json.RawMessage, error) {
	body, _, err := s.c.doRaw(ctx, http.MethodGet, v1("jobs", id, "result"), nil, nil, "")
	if err != nil {
		return nil, err
	}
	return json.RawMessage(body), nil
}

// Result decodes a finished job's result payload into out (one of the
// api.*JobResult types for the built-in job types).
func (s *JobsService) Result(ctx context.Context, id string, out any) error {
	body, err := s.ResultRaw(ctx, id)
	if err != nil {
		return err
	}
	return unmarshalInto(body, out)
}

// Wait polls the job until it reaches a terminal state (done, failed or
// cancelled) and returns that snapshot. It does not treat a failed or
// cancelled job as an error — inspect view.Status — and returns early
// only when ctx is done or the server becomes unreachable. The poll
// interval is configured with WithPollInterval.
func (s *JobsService) Wait(ctx context.Context, id string) (api.JobView, error) {
	return s.WaitFunc(ctx, id, nil)
}

// WaitFunc is Wait with a per-poll observer: onPoll receives every
// snapshot, including the terminal one, which is how a CLI renders live
// progress from view.Progress. A nil onPoll behaves exactly like Wait.
func (s *JobsService) WaitFunc(ctx context.Context, id string, onPoll func(api.JobView)) (api.JobView, error) {
	t := time.NewTicker(s.c.pollEvery)
	defer t.Stop()
	for {
		view, err := s.Get(ctx, id)
		if err != nil {
			return api.JobView{}, err
		}
		if onPoll != nil {
			onPoll(view)
		}
		if view.Status.Terminal() {
			return view, nil
		}
		select {
		case <-ctx.Done():
			return view, ctx.Err()
		case <-t.C:
		}
	}
}

// WaitResult is Wait followed by Result: it blocks until the job is
// terminal, errors with code conflict if it failed or was cancelled,
// and otherwise decodes the result payload into out.
func (s *JobsService) WaitResult(ctx context.Context, id string, out any) (api.JobView, error) {
	view, err := s.Wait(ctx, id)
	if err != nil {
		return view, err
	}
	if view.Status != api.JobDone {
		return view, api.Errorf(api.CodeConflict, "job %s is %s: %s", view.ID, view.Status, view.Error)
	}
	return view, s.Result(ctx, id, out)
}

// unmarshalInto decodes a response body with a client-flavored error.
func unmarshalInto(body []byte, out any) error {
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

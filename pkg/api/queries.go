package api

import "math"

// NodeMass is one (node, value) entry of a sparse or dense distribution.
type NodeMass struct {
	Node int     `json:"node"`
	Mass float64 `json:"mass"`
}

// SweepInfo reports a sweep cut over a diffusion vector.
type SweepInfo struct {
	Set         []int   `json:"set"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
	Prefix      int     `json:"prefix"`
}

// PPRRequest parameterizes the ACL push endpoint
// (POST /v1/graphs/{name}/ppr).
type PPRRequest struct {
	Seeds []int   `json:"seeds"`
	Alpha float64 `json:"alpha"`
	Eps   float64 `json:"eps"`
	TopK  int     `json:"topk,omitempty"`
	Sweep bool    `json:"sweep,omitempty"`
}

// Normalize defaults Alpha to 0.15, Eps to 1e-4 and TopK to 100.
func (r *PPRRequest) Normalize() {
	if r.Alpha == 0 {
		r.Alpha = 0.15
	}
	if r.Eps == 0 {
		r.Eps = 1e-4
	}
	if r.TopK == 0 {
		r.TopK = 100
	}
}

func (r *PPRRequest) Validate() error {
	if err := validSeeds(r.Seeds); err != nil {
		return err
	}
	if r.Alpha <= 0 || r.Alpha >= 1 {
		return Errorf(CodeInvalidArgument, "alpha=%v outside (0,1)", r.Alpha)
	}
	if r.Eps <= 0 || math.IsNaN(r.Eps) {
		return Errorf(CodeInvalidArgument, "eps=%v must be positive", r.Eps)
	}
	if r.TopK < 0 {
		return Errorf(CodeInvalidArgument, "topk=%d must be >= 0", r.TopK)
	}
	return nil
}

// PPRResponse is the PPR endpoint's reply.
type PPRResponse struct {
	Support    int        `json:"support"`
	Sum        float64    `json:"sum"`
	Pushes     int        `json:"pushes"`
	WorkVolume float64    `json:"work_volume"`
	Top        []NodeMass `json:"top"`
	Sweep      *SweepInfo `json:"sweep,omitempty"`
	// Work carries the kernel's full work accounting when the request
	// asked for it with ?debug=work.
	Work *WorkStats `json:"work,omitempty"`
}

// SetWork implements WorkCarrier.
func (r *PPRResponse) SetWork(w *WorkStats) { r.Work = w }

// LocalClusterMethods are the accepted LocalClusterRequest.Method values.
var LocalClusterMethods = []string{"ppr", "nibble", "heat"}

// LocalClusterRequest selects one of the strongly-local clustering
// methods and its budget knobs (POST /v1/graphs/{name}/localcluster).
type LocalClusterRequest struct {
	// Method is "ppr" (ACL push + sweep, default), "nibble"
	// (Spielman–Teng truncated walk) or "heat" (local heat kernel).
	Method string  `json:"method,omitempty"`
	Seeds  []int   `json:"seeds"`
	Alpha  float64 `json:"alpha,omitempty"` // ppr teleportation
	Eps    float64 `json:"eps,omitempty"`   // truncation threshold (all methods)
	Steps  int     `json:"steps,omitempty"` // nibble walk steps
	T      float64 `json:"t,omitempty"`     // heat-kernel time
}

// Normalize defaults Method to "ppr", Alpha to 0.15, Eps to 1e-4, Steps
// to 20 and T to 5.
func (r *LocalClusterRequest) Normalize() {
	if r.Method == "" {
		r.Method = "ppr"
	}
	if r.Alpha == 0 {
		r.Alpha = 0.15
	}
	if r.Eps == 0 {
		r.Eps = 1e-4
	}
	if r.Steps == 0 {
		r.Steps = 20
	}
	if r.T == 0 {
		r.T = 5
	}
}

func (r *LocalClusterRequest) Validate() error {
	switch r.Method {
	case "ppr", "nibble", "heat":
	default:
		return Errorf(CodeInvalidArgument, "method must be ppr|nibble|heat, got %q", r.Method).
			WithDetail("methods", LocalClusterMethods)
	}
	if err := validSeeds(r.Seeds); err != nil {
		return err
	}
	if r.Alpha <= 0 || r.Alpha >= 1 {
		return Errorf(CodeInvalidArgument, "alpha=%v outside (0,1)", r.Alpha)
	}
	if r.Eps <= 0 || math.IsNaN(r.Eps) {
		return Errorf(CodeInvalidArgument, "eps=%v must be positive", r.Eps)
	}
	if r.Steps < 1 {
		return Errorf(CodeInvalidArgument, "steps=%d must be >= 1", r.Steps)
	}
	if r.T <= 0 || math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return Errorf(CodeInvalidArgument, "t=%v must be positive and finite", r.T)
	}
	return nil
}

// LocalClusterResponse is the local-cluster endpoint's reply.
type LocalClusterResponse struct {
	Method      string  `json:"method"`
	Set         []int   `json:"set"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
	Volume      float64 `json:"volume"`
	Support     int     `json:"support"` // max support touched: the locality measure
	// Work carries the kernel's full work accounting when the request
	// asked for it with ?debug=work.
	Work *WorkStats `json:"work,omitempty"`
}

// SetWork implements WorkCarrier.
func (r *LocalClusterResponse) SetWork(w *WorkStats) { r.Work = w }

// DiffuseKinds are the accepted DiffuseRequest.Kind values.
var DiffuseKinds = []string{"heat", "ppr", "lazy"}

// DiffuseRequest parameterizes the dense diffusion endpoint (heat
// kernel, PageRank, lazy random walk; POST /v1/graphs/{name}/diffuse).
type DiffuseRequest struct {
	// Kind is "heat" (default), "ppr" or "lazy".
	Kind  string  `json:"kind,omitempty"`
	Seeds []int   `json:"seeds"`
	T     float64 `json:"t,omitempty"`     // heat time
	Gamma float64 `json:"gamma,omitempty"` // ppr teleportation
	Alpha float64 `json:"alpha,omitempty"` // lazy-walk laziness (default 0.5)
	K     int     `json:"k,omitempty"`     // lazy-walk steps
	TopK  int     `json:"topk,omitempty"`
}

// Normalize defaults Kind to "heat", T to 3, Gamma to 0.15, Alpha to
// 0.5, K to 10 and TopK to 100.
func (r *DiffuseRequest) Normalize() {
	if r.Kind == "" {
		r.Kind = "heat"
	}
	if r.T == 0 {
		r.T = 3
	}
	if r.Gamma == 0 {
		r.Gamma = 0.15
	}
	if r.Alpha == 0 {
		r.Alpha = 0.5
	}
	if r.K == 0 {
		r.K = 10
	}
	if r.TopK == 0 {
		r.TopK = 100
	}
}

func (r *DiffuseRequest) Validate() error {
	switch r.Kind {
	case "heat", "ppr", "lazy":
	default:
		return Errorf(CodeInvalidArgument, "kind must be heat|ppr|lazy, got %q", r.Kind).
			WithDetail("kinds", DiffuseKinds)
	}
	if err := validSeeds(r.Seeds); err != nil {
		return err
	}
	if r.T <= 0 || math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return Errorf(CodeInvalidArgument, "t=%v must be positive and finite", r.T)
	}
	if r.Gamma <= 0 || r.Gamma >= 1 {
		return Errorf(CodeInvalidArgument, "gamma=%v outside (0,1)", r.Gamma)
	}
	if r.K < 1 {
		return Errorf(CodeInvalidArgument, "k=%d must be >= 1", r.K)
	}
	if r.TopK < 0 {
		return Errorf(CodeInvalidArgument, "topk=%d must be >= 0", r.TopK)
	}
	return nil
}

// DiffuseResponse is the diffusion endpoint's reply.
type DiffuseResponse struct {
	Kind string     `json:"kind"`
	Sum  float64    `json:"sum"`
	Top  []NodeMass `json:"top"`
	// Work carries coarse work accounting (dense diffusions touch the
	// whole graph) when the request asked for it with ?debug=work.
	Work *WorkStats `json:"work,omitempty"`
}

// SetWork implements WorkCarrier.
func (r *DiffuseResponse) SetWork(w *WorkStats) { r.Work = w }

// SweepCutRequest carries a caller-provided vector to sweep
// (POST /v1/graphs/{name}/sweepcut).
type SweepCutRequest struct {
	Values []NodeMass `json:"values"`
}

func (r *SweepCutRequest) Normalize() {}

func (r *SweepCutRequest) Validate() error {
	if len(r.Values) == 0 {
		return Errorf(CodeInvalidArgument, "sweepcut needs a nonempty values vector")
	}
	for _, nm := range r.Values {
		if nm.Node < 0 {
			return Errorf(CodeInvalidArgument, "node %d is negative", nm.Node)
		}
		if math.IsNaN(nm.Mass) || math.IsInf(nm.Mass, 0) {
			return Errorf(CodeInvalidArgument, "node %d has non-finite mass", nm.Node)
		}
	}
	return nil
}

package api

import "math"

// Batch queries run one independent single-seed diffusion per entry of
// Seeds — unlike PPRRequest.Seeds, which is one seed *set* for one
// diffusion — on the kernel's cache-blocked batch engine. Every
// per-seed result is byte-identical to the corresponding single-seed
// endpoint's reply for `{"seeds":[s]}` with the same parameters; the
// batch merely amortizes graph traversal and per-request overhead.

// MaxBatchSeeds bounds the number of diffusions one batch request may
// carry; larger fan-outs should be split client-side so a single
// request cannot monopolize the query workers.
const MaxBatchSeeds = 1024

// PPRBatchRequest parameterizes the batched ACL push endpoint
// (POST /v1/graphs/{name}/ppr:batch).
type PPRBatchRequest struct {
	// Seeds holds one seed per diffusion: K entries → K independent
	// single-seed PPR vectors. Duplicates are allowed and produce
	// identical results.
	Seeds []int   `json:"seeds"`
	Alpha float64 `json:"alpha"`
	Eps   float64 `json:"eps"`
	TopK  int     `json:"topk,omitempty"`
	Sweep bool    `json:"sweep,omitempty"`
}

// Normalize defaults Alpha to 0.15, Eps to 1e-4 and TopK to 100 — the
// single-seed PPR defaults, so a batched seed answers exactly like a
// lone one.
func (r *PPRBatchRequest) Normalize() {
	if r.Alpha == 0 {
		r.Alpha = 0.15
	}
	if r.Eps == 0 {
		r.Eps = 1e-4
	}
	if r.TopK == 0 {
		r.TopK = 100
	}
}

func (r *PPRBatchRequest) Validate() error {
	if err := validSeeds(r.Seeds); err != nil {
		return err
	}
	if len(r.Seeds) > MaxBatchSeeds {
		return Errorf(CodeInvalidArgument, "batch of %d seeds exceeds the %d-seed limit", len(r.Seeds), MaxBatchSeeds)
	}
	if r.Alpha <= 0 || r.Alpha >= 1 {
		return Errorf(CodeInvalidArgument, "alpha=%v outside (0,1)", r.Alpha)
	}
	if r.Eps <= 0 || math.IsNaN(r.Eps) {
		return Errorf(CodeInvalidArgument, "eps=%v must be positive", r.Eps)
	}
	if r.TopK < 0 {
		return Errorf(CodeInvalidArgument, "topk=%d must be >= 0", r.TopK)
	}
	return nil
}

// PPRBatchResult is one seed's slice of a batch reply; its fields
// mirror PPRResponse for the single-seed request {"seeds":[seed]}.
type PPRBatchResult struct {
	Seed       int        `json:"seed"`
	Support    int        `json:"support"`
	Sum        float64    `json:"sum"`
	Pushes     int        `json:"pushes"`
	WorkVolume float64    `json:"work_volume"`
	Top        []NodeMass `json:"top"`
	Sweep      *SweepInfo `json:"sweep,omitempty"`
}

// PPRBatchResponse is the batched PPR endpoint's reply: one result per
// requested seed, in request order.
type PPRBatchResponse struct {
	Results []PPRBatchResult `json:"results"`
	// TotalWork is Σ deg(u) over push operations across all seeds.
	TotalWork float64 `json:"total_work"`
	// Work aggregates the kernel's work accounting across the batch
	// when the request asked for it with ?debug=work.
	Work *WorkStats `json:"work,omitempty"`
}

// SetWork implements WorkCarrier.
func (r *PPRBatchResponse) SetWork(w *WorkStats) { r.Work = w }

// LocalClusterBatchRequest parameterizes the batched local-cluster
// endpoint (POST /v1/graphs/{name}/localcluster:batch). Method and the
// budget knobs are shared by every seed.
type LocalClusterBatchRequest struct {
	// Method is "ppr" (default), "nibble" or "heat".
	Method string `json:"method,omitempty"`
	// Seeds holds one seed per clustering: K entries → K independent
	// single-seed local clusters.
	Seeds []int   `json:"seeds"`
	Alpha float64 `json:"alpha,omitempty"` // ppr teleportation
	Eps   float64 `json:"eps,omitempty"`   // truncation threshold (all methods)
	Steps int     `json:"steps,omitempty"` // nibble walk steps
	T     float64 `json:"t,omitempty"`     // heat-kernel time
}

// Normalize applies the single-seed localcluster defaults: Method
// "ppr", Alpha 0.15, Eps 1e-4, Steps 20, T 5.
func (r *LocalClusterBatchRequest) Normalize() {
	if r.Method == "" {
		r.Method = "ppr"
	}
	if r.Alpha == 0 {
		r.Alpha = 0.15
	}
	if r.Eps == 0 {
		r.Eps = 1e-4
	}
	if r.Steps == 0 {
		r.Steps = 20
	}
	if r.T == 0 {
		r.T = 5
	}
}

func (r *LocalClusterBatchRequest) Validate() error {
	switch r.Method {
	case "ppr", "nibble", "heat":
	default:
		return Errorf(CodeInvalidArgument, "method must be ppr|nibble|heat, got %q", r.Method).
			WithDetail("methods", LocalClusterMethods)
	}
	if err := validSeeds(r.Seeds); err != nil {
		return err
	}
	if len(r.Seeds) > MaxBatchSeeds {
		return Errorf(CodeInvalidArgument, "batch of %d seeds exceeds the %d-seed limit", len(r.Seeds), MaxBatchSeeds)
	}
	if r.Alpha <= 0 || r.Alpha >= 1 {
		return Errorf(CodeInvalidArgument, "alpha=%v outside (0,1)", r.Alpha)
	}
	if r.Eps <= 0 || math.IsNaN(r.Eps) {
		return Errorf(CodeInvalidArgument, "eps=%v must be positive", r.Eps)
	}
	if r.Steps < 1 {
		return Errorf(CodeInvalidArgument, "steps=%d must be >= 1", r.Steps)
	}
	if r.T <= 0 || math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return Errorf(CodeInvalidArgument, "t=%v must be positive and finite", r.T)
	}
	return nil
}

// LocalClusterBatchResult is one seed's cluster; its fields mirror
// LocalClusterResponse for the single-seed request {"seeds":[seed]}.
type LocalClusterBatchResult struct {
	Seed        int     `json:"seed"`
	Set         []int   `json:"set"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
	Volume      float64 `json:"volume"`
	Support     int     `json:"support"`
}

// LocalClusterBatchResponse is the batched local-cluster endpoint's
// reply: one result per requested seed, in request order.
type LocalClusterBatchResponse struct {
	Method  string                    `json:"method"`
	Results []LocalClusterBatchResult `json:"results"`
	// Work aggregates the kernel's work accounting across the batch
	// when the request asked for it with ?debug=work.
	Work *WorkStats `json:"work,omitempty"`
}

// SetWork implements WorkCarrier.
func (r *LocalClusterBatchResponse) SetWork(w *WorkStats) { r.Work = w }

// Package api defines the versioned wire contract of the graphd HTTP
// service: every request and response body, the structured error
// envelope, and the graph/job state enums. The graphd server
// (internal/service), the Go SDK (pkg/client) and the graphctl CLI all
// compile against these types, so a payload that round-trips through one
// of them round-trips through all of them.
//
// Conventions:
//
//   - Every request type implements Request: Normalize fills documented
//     defaults in place, Validate checks everything that can be checked
//     without the target graph and returns an *Error with a
//     machine-readable code. Servers run both after decoding; clients
//     may run them before sending to fail fast.
//   - Errors travel as {"error":{"code","message","details"}} with the
//     codes in this package. Clients must branch on Code, not Message.
//   - All endpoints live under the /v1 prefix; Version names it.
//
// docs/api.md is the endpoint-by-endpoint reference derived from these
// types.
package api

// Version is the API version prefix every route lives under.
const Version = "v1"

// Request is the contract every v1 request body implements.
type Request interface {
	// Normalize fills zero-valued optional fields with their documented
	// defaults, in place. It is idempotent.
	Normalize()
	// Validate reports the first graph-independent problem with the
	// request as an *Error (code invalid_argument), or nil.
	Validate() error
}

// validSeeds is the shared seed-set check: nonempty, no negative ids.
// Upper-bound checks need the target graph and happen server-side.
func validSeeds(seeds []int) error {
	if len(seeds) == 0 {
		return Errorf(CodeInvalidArgument, "seeds must be a nonempty list of node ids")
	}
	for _, u := range seeds {
		if u < 0 {
			return Errorf(CodeInvalidArgument, "seed %d is negative", u)
		}
	}
	return nil
}

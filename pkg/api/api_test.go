package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	in := ErrorEnvelope{Error: Errorf(CodeNotFound, "graph %q not found", "g").
		WithDetail("name", "g")}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ErrorEnvelope
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error.Code != CodeNotFound || out.Error.Message != `graph "g" not found` {
		t.Fatalf("round trip: %+v", out.Error)
	}
	if out.Error.Details["name"] != "g" {
		t.Fatalf("details lost: %+v", out.Error.Details)
	}
}

func TestIsCodeUnwraps(t *testing.T) {
	err := fmt.Errorf("call failed: %w", Errorf(CodeConflict, "busy"))
	if !IsCode(err, CodeConflict) || !IsConflict(err) {
		t.Fatal("IsCode should see through wrapping")
	}
	if IsNotFound(err) || IsCode(errors.New("plain"), CodeConflict) {
		t.Fatal("IsCode matched the wrong error")
	}
}

func TestCodeStatusMapping(t *testing.T) {
	for _, c := range []ErrorCode{
		CodeInvalidArgument, CodeNotFound, CodeConflict,
		CodeUnsupportedMediaType, CodeDeadlineExceeded, CodeCancelled,
		CodeInternal, CodeUnavailable,
	} {
		if got := CodeForStatus(c.HTTPStatus()); got != c {
			t.Errorf("CodeForStatus(%d) = %s, want %s", c.HTTPStatus(), got, c)
		}
	}
}

func TestRequestNormalizeAndValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"ppr defaults", &PPRRequest{Seeds: []int{0}}, true},
		{"ppr no seeds", &PPRRequest{}, false},
		{"ppr negative seed", &PPRRequest{Seeds: []int{-1}}, false},
		{"ppr alpha high", &PPRRequest{Seeds: []int{0}, Alpha: 2}, false},
		{"ppr eps negative", &PPRRequest{Seeds: []int{0}, Eps: -1}, false},
		{"localcluster defaults", &LocalClusterRequest{Seeds: []int{3}}, true},
		{"localcluster bad method", &LocalClusterRequest{Seeds: []int{3}, Method: "magic"}, false},
		{"diffuse defaults", &DiffuseRequest{Seeds: []int{1}}, true},
		{"diffuse bad kind", &DiffuseRequest{Seeds: []int{1}, Kind: "x"}, false},
		{"sweepcut ok", &SweepCutRequest{Values: []NodeMass{{Node: 0, Mass: 1}}}, true},
		{"sweepcut empty", &SweepCutRequest{}, false},
		{"sweepcut negative node", &SweepCutRequest{Values: []NodeMass{{Node: -3, Mass: 1}}}, false},
		{"generate kronecker", &GenerateRequest{Family: "kronecker", Levels: 8}, true},
		{"generate unknown family", &GenerateRequest{Family: "nope"}, false},
		{"generate grid missing dims", &GenerateRequest{Family: "grid"}, false},
		{"stream ok", &StreamCreateRequest{Nodes: 4}, true},
		{"stream zero nodes", &StreamCreateRequest{}, false},
		{"edges ok", &EdgeBatchRequest{Edges: []StreamEdge{{U: 0, V: 1}}}, true},
		{"edges empty", &EdgeBatchRequest{}, false},
		{"edges negative weight", &EdgeBatchRequest{Edges: []StreamEdge{{U: 0, V: 1, W: -2}}}, false},
		{"job submit ok", &JobSubmitRequest{Type: "ncp", Graph: "g"}, true},
		{"job submit no type", &JobSubmitRequest{}, false},
		{"ncp params defaults", &NCPJobParams{}, true},
		{"ncp params bad method", &NCPJobParams{Method: "sideways"}, false},
		{"partition params ok", &PartitionJobParams{K: 4}, true},
		{"partition params k0", &PartitionJobParams{}, false},
		{"fig1 params defaults", &Fig1JobParams{}, true},
		{"fig1 params bad prob", &Fig1JobParams{FwdProb: 1.5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.req.Normalize()
			err := tc.req.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want invalid_argument")
				}
				if !IsInvalidArgument(err) {
					t.Fatalf("Validate() = %v, want code invalid_argument", err)
				}
			}
		})
	}
}

func TestNormalizeIdempotentAndFillsDefaults(t *testing.T) {
	r := &PPRRequest{Seeds: []int{0}}
	r.Normalize()
	if r.Alpha != 0.15 || r.Eps != 1e-4 || r.TopK != 100 {
		t.Fatalf("defaults: %+v", r)
	}
	alpha, eps, topk := r.Alpha, r.Eps, r.TopK
	r.Normalize()
	if r.Alpha != alpha || r.Eps != eps || r.TopK != topk {
		t.Fatalf("Normalize not idempotent: %+v", r)
	}
}

func TestNewJobMarshalsParams(t *testing.T) {
	req, err := NewJob("ncp", "g", &NCPJobParams{Method: "spectral", Seeds: 4})
	if err != nil {
		t.Fatal(err)
	}
	var p NCPJobParams
	if err := json.Unmarshal(req.Params, &p); err != nil {
		t.Fatal(err)
	}
	if p.Method != "spectral" || p.Seeds != 4 {
		t.Fatalf("params round trip: %+v", p)
	}
}

func TestJobStatusTerminal(t *testing.T) {
	for s, want := range map[JobStatus]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, !want, want)
		}
	}
}

package api

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is the machine-readable classification of a v1 API error.
// Codes are part of the wire contract: clients branch on the code, never
// on the human-readable message, which may change between releases.
type ErrorCode string

const (
	// CodeInvalidArgument: the request body or parameters are invalid.
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeNotFound: the named graph or job does not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict: the operation conflicts with resource state (name
	// taken, graph still streaming, job already finished).
	CodeConflict ErrorCode = "conflict"
	// CodeUnsupportedMediaType: a JSON endpoint received a body declared
	// as a non-JSON content type.
	CodeUnsupportedMediaType ErrorCode = "unsupported_media_type"
	// CodeDeadlineExceeded: the per-request deadline fired before the
	// computation finished.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCancelled: the request's context was cancelled (client went
	// away) before the computation finished.
	CodeCancelled ErrorCode = "cancelled"
	// CodeInternal: the server failed in a way that is not the caller's
	// fault (panic, marshal failure).
	CodeInternal ErrorCode = "internal"
	// CodeUnavailable: the server cannot take the work right now (job
	// queue full, shutdown in progress). Retryable with backoff.
	CodeUnavailable ErrorCode = "unavailable"
)

// HTTPStatus maps an error code onto its canonical HTTP status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeUnsupportedMediaType:
		return http.StatusUnsupportedMediaType
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeCancelled:
		return http.StatusRequestTimeout
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// CodeForStatus is the reverse mapping, used by clients when a response
// carries no parseable envelope (e.g. a proxy error page).
func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMediaType
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	case http.StatusRequestTimeout:
		return CodeCancelled
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// Error is the structured error every v1 endpoint returns on failure,
// wrapped on the wire as {"error":{"code","message","details"}}. It
// implements the error interface so SDK calls surface it directly.
type Error struct {
	Code    ErrorCode      `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
	// Status is the HTTP status the error travelled with; set by the
	// client on decode (0 when the error was built locally).
	Status int `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an *Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithDetail returns e with one details entry added (initializing the
// map if needed), for fluent construction.
func (e *Error) WithDetail(key string, value any) *Error {
	if e.Details == nil {
		e.Details = make(map[string]any, 1)
	}
	e.Details[key] = value
	return e
}

// ErrorEnvelope is the wire form of an Error.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// IsCode reports whether err is (or wraps) an *Error with the given code.
func IsCode(err error, code ErrorCode) bool {
	var ae *Error
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Code == code
}

// IsNotFound reports whether err is a not_found API error.
func IsNotFound(err error) bool { return IsCode(err, CodeNotFound) }

// IsConflict reports whether err is a conflict API error.
func IsConflict(err error) bool { return IsCode(err, CodeConflict) }

// IsInvalidArgument reports whether err is an invalid_argument API error.
func IsInvalidArgument(err error) bool { return IsCode(err, CodeInvalidArgument) }

package api

import (
	"encoding/json"
	"time"
)

// JobStatus is the lifecycle state of an async job.
type JobStatus string

const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// Terminal reports whether the status is final (done, failed or
// cancelled); pollers stop when it is.
func (s JobStatus) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobView is the externally visible snapshot of a job.
type JobView struct {
	ID        string          `json:"id"`
	Type      string          `json:"type"`
	Graph     string          `json:"graph,omitempty"`
	Params    json.RawMessage `json:"params,omitempty"`
	Status    JobStatus       `json:"status"`
	Error     string          `json:"error,omitempty"`
	FromCache bool            `json:"from_cache,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	RunTimeMS float64         `json:"run_time_ms,omitempty"`
	// Progress is the executor-reported completion fraction in [0,1]
	// while the job is running; 1 once it is done. Executors that do
	// not report progress leave it 0.
	Progress float64 `json:"progress,omitempty"`
}

// JobList is the reply of GET /v1/jobs.
type JobList struct {
	Jobs []JobView `json:"jobs"`
}

// JobTypes are the job types registered by default.
var JobTypes = []string{"ncp", "partition", "fig1"}

// JobSubmitRequest enqueues an async job (POST /v1/jobs). Params is the
// job type's own params payload (NCPJobParams, PartitionJobParams,
// Fig1JobParams for the built-in types).
type JobSubmitRequest struct {
	Type   string          `json:"type"`
	Graph  string          `json:"graph,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
}

func (r *JobSubmitRequest) Normalize() {}

// Validate checks the shape of the submission; whether the type is
// registered and the graph exists is the server's call.
func (r *JobSubmitRequest) Validate() error {
	if r.Type == "" {
		return Errorf(CodeInvalidArgument, "job type is required").
			WithDetail("types", JobTypes)
	}
	return nil
}

// NewJob builds a JobSubmitRequest from typed params, marshaling them
// into the Params payload. graph may be empty for job types that do not
// operate on a stored graph (fig1).
func NewJob(jobType, graph string, params any) (JobSubmitRequest, error) {
	req := JobSubmitRequest{Type: jobType, Graph: graph}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return JobSubmitRequest{}, err
		}
		req.Params = raw
	}
	return req, nil
}

// NCPJobParams parameterizes the "ncp" job type.
type NCPJobParams struct {
	// Method is "spectral", "flow" or "both" (default).
	Method string `json:"method,omitempty"`
	// Seeds per α scale for the spectral profile (default 20).
	Seeds int `json:"seeds,omitempty"`
	// Workers for the profile engines (0 = all CPUs).
	Workers int `json:"workers,omitempty"`
	// BaseSeed drives all sampling (default 1; results are a pure
	// function of the params, so identical submissions cache-hit).
	BaseSeed int64 `json:"base_seed,omitempty"`
}

// Normalize defaults Method to "both" and BaseSeed to 1.
func (p *NCPJobParams) Normalize() {
	if p.Method == "" {
		p.Method = "both"
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
}

func (p *NCPJobParams) Validate() error {
	switch p.Method {
	case "spectral", "flow", "both":
	default:
		return Errorf(CodeInvalidArgument, "ncp method must be spectral|flow|both, got %q", p.Method)
	}
	if p.Seeds < 0 {
		return Errorf(CodeInvalidArgument, "seeds=%d must be >= 0", p.Seeds)
	}
	if p.Workers < 0 {
		return Errorf(CodeInvalidArgument, "workers=%d must be >= 0", p.Workers)
	}
	return nil
}

// EnvelopePoint is one bucket of an NCP minimum-conductance envelope.
type EnvelopePoint struct {
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
}

// ProfileSummary is the serialized form of one NCP profile.
type ProfileSummary struct {
	Clusters int             `json:"clusters"`
	Envelope []EnvelopePoint `json:"envelope"`
}

// NCPJobResult is the "ncp" job's result payload. The graph's name is
// on the job view, not repeated here.
type NCPJobResult struct {
	Nodes    int             `json:"nodes"`
	EdgesM   int             `json:"edges"`
	Spectral *ProfileSummary `json:"spectral,omitempty"`
	Flow     *ProfileSummary `json:"flow,omitempty"`
}

// PartitionJobParams parameterizes the "partition" job type.
type PartitionJobParams struct {
	K int `json:"k"`
	// Seed drives the multilevel matching (default 1).
	Seed int64 `json:"seed,omitempty"`
	// IncludeLabels returns the per-node label vector (can be large).
	IncludeLabels bool `json:"include_labels,omitempty"`
}

// Normalize defaults Seed to 1.
func (p *PartitionJobParams) Normalize() {
	if p.Seed == 0 {
		p.Seed = 1
	}
}

func (p *PartitionJobParams) Validate() error {
	if p.K < 1 {
		return Errorf(CodeInvalidArgument, "partition k must be >= 1, got %d", p.K)
	}
	return nil
}

// PartSummary describes one part of a k-way partition.
type PartSummary struct {
	Label       int     `json:"label"`
	Size        int     `json:"size"`
	Volume      float64 `json:"volume"`
	Conductance float64 `json:"conductance"`
}

// PartitionJobResult is the "partition" job's result payload.
type PartitionJobResult struct {
	K      int           `json:"k"`
	Parts  []PartSummary `json:"parts"`
	MaxPhi float64       `json:"max_conductance"`
	Labels []int         `json:"labels,omitempty"`
}

// Fig1JobParams parameterizes the "fig1" job type, which generates its
// own forest-fire network; zero values select the experiment defaults.
type Fig1JobParams struct {
	N             int     `json:"n,omitempty"`
	FwdProb       float64 `json:"fwd_prob,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	SpectralSeeds int     `json:"spectral_seeds,omitempty"`
	MinSize       int     `json:"min_size,omitempty"`
	MaxSize       int     `json:"max_size,omitempty"`
	Workers       int     `json:"workers,omitempty"`
}

func (p *Fig1JobParams) Normalize() {}

func (p *Fig1JobParams) Validate() error {
	if p.N < 0 {
		return Errorf(CodeInvalidArgument, "n=%d must be >= 0", p.N)
	}
	if p.FwdProb < 0 || p.FwdProb >= 1 {
		return Errorf(CodeInvalidArgument, "fwd_prob=%v outside [0,1)", p.FwdProb)
	}
	return nil
}

// Fig1JobResult is the "fig1" job's result payload: the aggregate
// comparison that summarizes all three panels.
type Fig1JobResult struct {
	Nodes                int     `json:"nodes"`
	Edges                int     `json:"edges"`
	SpectralPoints       int     `json:"spectral_points"`
	FlowPoints           int     `json:"flow_points"`
	MedianPhiSpectral    float64 `json:"median_phi_spectral"`
	MedianPhiFlow        float64 `json:"median_phi_flow"`
	MedianPathSpectral   float64 `json:"median_path_spectral"`
	MedianPathFlow       float64 `json:"median_path_flow"`
	MedianRatioSpectral  float64 `json:"median_ratio_spectral"`
	MedianRatioFlow      float64 `json:"median_ratio_flow"`
	FracFlowWinsPhi      float64 `json:"frac_flow_wins_phi"`
	FracSpectralWinsPath float64 `json:"frac_spectral_wins_path"`
	EnvelopeRatioGeoMean float64 `json:"envelope_ratio_geomean"`
}

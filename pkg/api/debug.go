package api

import "time"

// WorkStats is the wire form of kernel.Stats: the work accounting the
// paper is about (pushes, work volume Σ deg(u), support touched),
// exposed on query responses when the caller asks for it with
// ?debug=work. Fields that a method does not produce are zero and
// omitted from the JSON.
type WorkStats struct {
	// Method names the diffusion that produced the stats: "push",
	// "nibble", "heat", or "dense-<kind>" for the dense endpoint.
	Method string `json:"method"`
	// Pushes counts ACL push operations.
	Pushes int `json:"pushes,omitempty"`
	// WorkVolume is Σ deg(u) over processed nodes — the quantity the
	// work-proportional-to-output bound is stated in.
	WorkVolume float64 `json:"work_volume,omitempty"`
	// Steps counts truncated-walk steps (nibble).
	Steps int `json:"steps,omitempty"`
	// Terms counts Taylor terms evaluated (heat kernel).
	Terms int `json:"terms,omitempty"`
	// MaxSupport is the peak number of nonzero entries touched.
	MaxSupport int `json:"max_support,omitempty"`
}

// WorkCarrier is implemented by query responses that can carry an
// optional work block; the service attaches one when ?debug=work is
// set.
type WorkCarrier interface {
	SetWork(*WorkStats)
}

// DebugQuery is one completed query as retained by the server's
// in-memory trace ring (GET /debug/queries). Newest first in the
// response.
type DebugQuery struct {
	// ID is the request ID (X-Request-Id) of the query.
	ID string `json:"id"`
	// Route is the matched route pattern, e.g.
	// "POST /v1/graphs/{name}/ppr".
	Route string `json:"route"`
	// Graph is the target graph name.
	Graph string `json:"graph,omitempty"`
	// Params is the canonicalized params digest the cache is keyed by.
	Params string `json:"params,omitempty"`
	// Status is the HTTP status written.
	Status int `json:"status"`
	// Cache is the X-Graphd-Cache outcome: "hit", "shared" or "miss".
	Cache string `json:"cache,omitempty"`
	// DurationMS is the wall time from dispatch to response written.
	DurationMS float64 `json:"duration_ms"`
	// Work is the diffusion work accounting, when the computation
	// produced one.
	Work *WorkStats `json:"work,omitempty"`
	// Time is when the query completed.
	Time time.Time `json:"time"`
}

// DebugQueriesResponse is the reply of GET /debug/queries.
type DebugQueriesResponse struct {
	Queries []DebugQuery `json:"queries"`
}

package api

// GraphState is the lifecycle state of a stored graph.
type GraphState string

const (
	// GraphStreaming: the graph is accumulating edges and cannot be
	// queried yet.
	GraphStreaming GraphState = "streaming"
	// GraphSealed: the graph is frozen into immutable CSR form and
	// queryable.
	GraphSealed GraphState = "sealed"
)

// GraphPersistence describes how a stored graph is held on disk.
type GraphPersistence string

const (
	// PersistNone: the graph lives only in memory (no -data-dir, or the
	// server predates durability). A restart loses it.
	PersistNone GraphPersistence = "none"
	// PersistSnapshot: the sealed graph has a durable binary CSR
	// snapshot; a restart reloads it.
	PersistSnapshot GraphPersistence = "snapshot"
	// PersistWAL: the streaming graph's edge batches are in a durable
	// write-ahead log; a restart replays them back into streaming state.
	PersistWAL GraphPersistence = "wal"
)

// GraphBackend identifies the in-process storage backend a sealed
// graph is served from.
type GraphBackend string

const (
	// BackendHeap: the native []int/[]float64 CSR structure, fastest for
	// pure in-memory serving.
	BackendHeap GraphBackend = "heap"
	// BackendCompact: uint32 node ids with weights narrowed to float32
	// when lossless, roughly halving resident memory.
	BackendCompact GraphBackend = "compact"
	// BackendMmap: adjacency served directly off the memory-mapped GSNAP
	// v2 snapshot — zero-copy load and near-instant restart.
	BackendMmap GraphBackend = "mmap"
)

// GraphInfo describes one stored graph; returned by the load, generate,
// stream, seal, import, get and list endpoints.
type GraphInfo struct {
	Name   string     `json:"name"`
	State  GraphState `json:"state"`
	Sealed bool       `json:"sealed"` // convenience mirror of State
	Nodes  int        `json:"nodes"`
	Edges  int        `json:"edges"`
	Volume float64    `json:"volume,omitempty"`
	// Persistence reports the graph's durability: "none", "snapshot" or
	// "wal".
	Persistence GraphPersistence `json:"persistence,omitempty"`
	// Backend reports the storage backend a sealed graph is served from:
	// "heap", "compact" or "mmap". Empty while streaming.
	Backend GraphBackend `json:"backend,omitempty"`
}

// GraphList is the reply of GET /v1/graphs.
type GraphList struct {
	Graphs []GraphInfo `json:"graphs"`
}

// StatsResponse summarizes a stored graph (GET /v1/graphs/{name}/stats).
type StatsResponse struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	Volume    float64 `json:"volume"`
	MinDegree float64 `json:"min_degree"`
	MaxDegree float64 `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
	Isolated  int     `json:"isolated"`
}

// GenerateFamilies are the accepted GenerateRequest.Family values.
var GenerateFamilies = []string{
	"kronecker", "forestfire", "erdosrenyi", "grid", "ring_of_cliques", "caveman",
}

// GenerateRequest asks the server to synthesize a graph from one of the
// internal generator families (POST /v1/graphs/{name}/generate).
type GenerateRequest struct {
	// Family is one of GenerateFamilies.
	Family string `json:"family"`
	Seed   int64  `json:"seed,omitempty"`
	// Kronecker: Levels (2^Levels nodes) and Edges samples.
	Levels int `json:"levels,omitempty"`
	Edges  int `json:"edges,omitempty"`
	// Forest fire / Erdős–Rényi: N nodes, P burn/edge probability.
	N int     `json:"n,omitempty"`
	P float64 `json:"p,omitempty"`
	// Grid: Rows × Cols; ring_of_cliques / caveman: K cliques of CliqueN.
	Rows    int `json:"rows,omitempty"`
	Cols    int `json:"cols,omitempty"`
	K       int `json:"k,omitempty"`
	CliqueN int `json:"clique_n,omitempty"`
}

// Normalize defaults Seed to 1 so generation is deterministic for a
// given request payload.
func (r *GenerateRequest) Normalize() {
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// Validate checks the family name and the family's required knobs.
// Server-side resource caps (max nodes/edges) are enforced separately.
func (r *GenerateRequest) Validate() error {
	switch r.Family {
	case "kronecker":
		if r.Levels < 0 || r.Edges < 0 {
			return Errorf(CodeInvalidArgument, "kronecker levels and edges must be >= 0")
		}
	case "forestfire":
		if r.N < 0 || r.P < 0 || r.P >= 1 {
			return Errorf(CodeInvalidArgument, "forestfire needs n >= 0 and p in [0,1)")
		}
	case "erdosrenyi":
		if r.N <= 0 || r.P <= 0 {
			return Errorf(CodeInvalidArgument, "erdosrenyi needs n > 0 and p > 0")
		}
	case "grid":
		if r.Rows <= 0 || r.Cols <= 0 {
			return Errorf(CodeInvalidArgument, "grid needs rows > 0 and cols > 0")
		}
	case "ring_of_cliques", "caveman":
		if r.K <= 0 || r.CliqueN <= 0 {
			return Errorf(CodeInvalidArgument, "%s needs k > 0 and clique_n > 0", r.Family)
		}
	default:
		return Errorf(CodeInvalidArgument, "unknown family %q", r.Family).
			WithDetail("families", GenerateFamilies)
	}
	return nil
}

// StreamCreateRequest opens an incremental edge-stream graph
// (POST /v1/graphs/{name}/stream).
type StreamCreateRequest struct {
	Nodes int `json:"nodes"`
}

func (r *StreamCreateRequest) Normalize() {}

func (r *StreamCreateRequest) Validate() error {
	if r.Nodes <= 0 {
		return Errorf(CodeInvalidArgument, "stream graph needs nodes > 0, got %d", r.Nodes)
	}
	return nil
}

// StreamEdge is one edge of a POSTed edge batch. Weight 0 means 1.
type StreamEdge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w,omitempty"`
}

// EdgeBatchRequest appends edges to a streaming graph
// (POST /v1/graphs/{name}/edges).
type EdgeBatchRequest struct {
	Edges []StreamEdge `json:"edges"`
}

func (r *EdgeBatchRequest) Normalize() {}

// Validate rejects empty batches, negative endpoints and negative
// weights; endpoint upper bounds are checked server-side against the
// target graph's node count.
func (r *EdgeBatchRequest) Validate() error {
	if len(r.Edges) == 0 {
		return Errorf(CodeInvalidArgument, "edge batch is empty")
	}
	for i, e := range r.Edges {
		if e.U < 0 || e.V < 0 {
			return Errorf(CodeInvalidArgument, "edge %d (%d,%d) has a negative endpoint", i, e.U, e.V)
		}
		if e.W < 0 {
			return Errorf(CodeInvalidArgument, "edge %d (%d,%d) has negative weight %g", i, e.U, e.V, e.W)
		}
	}
	return nil
}

// EdgeBatchResponse is the append endpoint's reply.
type EdgeBatchResponse struct {
	Appended int `json:"appended"`
}

// DeleteResponse is the graph-delete endpoint's reply.
type DeleteResponse struct {
	Status string `json:"status"`
}

// HealthResponse is the reply of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	Commit        string  `json:"commit,omitempty"`
	GoVersion     string  `json:"go_version"`
	APIVersion    string  `json:"api_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

package repro

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vec"
)

// The tests in this file exercise the public facade end to end the way
// the README's quickstart does: every exported entry point is called at
// least once on a realistic small workload, and cross-checks tie the
// facade's pieces together (diffusion vs regularized SDP, partitioners vs
// Cheeger, local vs global clustering).

func TestFacadeGraphBuildAndIO(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddWeightedEdge(1, 2, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", g.N(), g.M())
	}
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() || back.Volume() != g.Volume() {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, g := range map[string]*Graph{
		"path":     Path(10),
		"cycle":    Cycle(10),
		"complete": Complete(6),
		"star":     Star(8),
		"grid":     Grid(3, 4),
		"lollipop": Lollipop(5, 4),
		"dumbbell": Dumbbell(5, 3),
		"ring":     RingOfCliques(3, 4),
		"caveman":  Caveman(3, 4),
	} {
		if g.N() == 0 || g.M() == 0 {
			t.Errorf("%s: degenerate graph", name)
		}
	}
	er, err := ErdosRenyi(30, 0.2, rng)
	if err != nil || er.N() != 30 {
		t.Fatalf("erdos-renyi: %v", err)
	}
	rr, err := RandomRegular(20, 4, rng)
	if err != nil {
		t.Fatalf("random-regular: %v", err)
	}
	for u := 0; u < rr.N(); u++ {
		if rr.Degree(u) != 4 {
			t.Fatalf("random-regular degree(%d) = %v", u, rr.Degree(u))
		}
	}
	ff, err := ForestFire(500, 0.35, rng)
	if err != nil || ff.N() != 500 {
		t.Fatalf("forest-fire: %v", err)
	}
}

func TestFacadeFiedlerAndCheeger(t *testing.T) {
	g := Dumbbell(8, 4)
	v2, lambda2, err := FiedlerVector(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != g.N() || lambda2 <= 0 {
		t.Fatalf("fiedler: len=%d lambda2=%v", len(v2), lambda2)
	}
	sp, err := SpectralPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Conductance > math.Sqrt(2*lambda2)+1e-9 {
		t.Errorf("sweep phi %v violates Cheeger upper bound %v", sp.Conductance, math.Sqrt(2*lambda2))
	}
	if sp.Conductance < lambda2/2-1e-9 {
		t.Errorf("phi %v below lambda2/2 %v — impossible", sp.Conductance, lambda2/2)
	}
}

func TestFacadeDiffusionsAndSDP(t *testing.T) {
	g := RingOfCliques(4, 5)
	seed, err := SeedVector(g.N(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	hk, err := HeatKernel(g, seed, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, seed, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := LazyWalk(g, seed, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, x := range map[string][]float64{"heat": hk, "pagerank": pr, "lazy": lz} {
		if math.Abs(vec.Sum(x)-1) > 1e-8 {
			t.Errorf("%s mass = %v, want 1", name, vec.Sum(x))
		}
	}
	// The facade's regularized SDP agrees with the paper's Section 3.1
	// table: the heat-kernel solution at eta = t.
	sol, err := RegularizedSDP(g, Entropy, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Weights) != g.N()-1 {
		t.Fatalf("SDP weights: %d, want n-1=%d", len(sol.Weights), g.N()-1)
	}
	var total float64
	for _, w := range sol.Weights {
		if w < -1e-12 {
			t.Errorf("negative SDP weight %v", w)
		}
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("SDP trace = %v, want 1", total)
	}
}

func TestFacadePartitioners(t *testing.T) {
	g := Dumbbell(10, 4)
	mqi, err := MetisMQI(g)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpectralPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	// Both must find the bridge on a dumbbell (phi well under the clique
	// scale), and MQI's result is the conductance of its returned set.
	if mqi.Conductance > 0.1 || sp.Conductance > 0.1 {
		t.Errorf("dumbbell cut missed: mqi=%v spectral=%v", mqi.Conductance, sp.Conductance)
	}
	if got := Conductance(g, mqi.Set); math.Abs(got-mqi.Conductance) > 1e-12 {
		t.Errorf("reported mqi phi %v != recomputed %v", mqi.Conductance, got)
	}

	imp, err := Improve(g, mqi.Set)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Conductance > mqi.Conductance+1e-12 {
		t.Errorf("Improve worsened: %v -> %v", mqi.Conductance, imp.Conductance)
	}

	kw, err := SpectralKWay(Caveman(3, 6), 3, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(kw.Labels) != 18 || kw.MaxPhi > 0.3 {
		t.Errorf("k-way clustering on caveman: labels=%d maxPhi=%v", len(kw.Labels), kw.MaxPhi)
	}
}

func TestFacadeLocalClustering(t *testing.T) {
	g := Caveman(4, 8)
	res, err := LocalCluster(g, []int{0}, 0.1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("empty local cluster")
	}
	// The cave containing node 0 is nodes 0..7.
	inCave := 0
	for _, u := range res.Set {
		if u < 8 {
			inCave++
		}
	}
	if inCave < len(res.Set)/2 {
		t.Errorf("local cluster strayed from the seed cave: %d/%d inside", inCave, len(res.Set))
	}

	pushRes, err := ApproxPageRank(g, []int{0}, 0.1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if pushRes.WorkVolume <= 0 || len(pushRes.P) == 0 {
		t.Error("push produced no work or empty vector")
	}

	nib, err := Nibble(g, []int{0}, 1e-4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if nib.Best == nil || len(nib.Best.Set) == 0 {
		t.Error("nibble found no sweep cut")
	}
	if nib.MaxSupport <= 0 {
		t.Error("nibble reported no support")
	}

	mov, err := MOV(g, []int{0}, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mov.Vector) != g.N() {
		t.Error("MOV vector has wrong length")
	}
}

func TestFacadeNCPs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := ForestFire(800, 0.35, rng)
	if err != nil {
		t.Fatal(err)
	}
	spPts, err := SpectralNCP(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	flPts, err := FlowNCP(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(spPts) == 0 || len(flPts) == 0 {
		t.Fatal("empty NCP")
	}
	for _, p := range append(spPts, flPts...) {
		if p.Conductance < 0 || p.Size <= 0 {
			t.Errorf("invalid NCP point %+v", p)
		}
	}
}

func TestFacadeStreamingAndDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RingOfCliques(4, 6)
	scores, err := StreamPageRank(StreamOf(g, rng), 20000, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vec.Sum(scores)-1) > 1e-9 {
		t.Errorf("stream scores sum %v", vec.Sum(scores))
	}

	dg, err := NewDynamicGraph(g.N())
	if err != nil {
		t.Fatal(err)
	}
	ppr, err := NewIncrementalPPR(dg, 0, 0.2, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v int, w float64) {
		if err == nil {
			err = ppr.AddEdge(u, v, w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ppr.CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	batch, err := BatchPersonalizedPageRank(g, []int{0, 6, 12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Vectors) != 3 {
		t.Fatalf("batch returned %d vectors", len(batch.Vectors))
	}
}

func TestFacadeRanking(t *testing.T) {
	g := Lollipop(8, 5)
	prs, err := PageRankScores(g, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := EigenvectorScores(g, 50000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	kz, err := KatzScores(g, 0.02, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := KendallTau(prs, evs)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Errorf("PageRank and eigenvector rankings anti-correlated: tau=%v", tau)
	}
	order := RankingOrder(kz)
	if len(order) != g.N() {
		t.Errorf("ranking order length %d", len(order))
	}
}

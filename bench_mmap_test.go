// Storage-backend benchmark matrix (BENCH_mmap.json): snapshot load
// time, resident memory, and PPR query latency for the heap, compact
// and mmap backends at three Kronecker graph sizes. This is the
// measured basis of the backend table in docs/storage.md — heap is the
// query-latency floor, compact halves the resident footprint, mmap
// makes loading O(1) copies and lets restarts serve straight off the
// page cache.
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/kernel"
	"repro/internal/persist"
)

// backendBenchSizes are the three Kronecker scales of the matrix. Edge
// counts are sample budgets; the realized m is logged per benchmark.
var backendBenchSizes = []struct {
	name   string
	levels int
	edges  int
}{
	{"n4k", 12, 40000},
	{"n16k", 14, 150000},
	{"n64k", 16, 600000},
}

var backendBench struct {
	once sync.Once
	dir  string
	g    map[string]*graph.Graph
	path map[string]string
	err  error
}

// backendBenchSnapshot generates (once) each bench graph and writes its
// v2 snapshot into a shared temp directory, returning the heap graph
// and the snapshot path for one size.
func backendBenchSnapshot(b *testing.B, size string) (*graph.Graph, string) {
	b.Helper()
	backendBench.once.Do(func() {
		dir, err := os.MkdirTemp("", "bench-gsnap-*")
		if err != nil {
			backendBench.err = err
			return
		}
		backendBench.dir = dir
		backendBench.g = make(map[string]*graph.Graph)
		backendBench.path = make(map[string]string)
		for _, s := range backendBenchSizes {
			g, err := gen.Kronecker(gen.KroneckerConfig{Levels: s.levels, Edges: s.edges}, rand.New(rand.NewSource(1)))
			if err != nil {
				backendBench.err = err
				return
			}
			p := filepath.Join(dir, s.name+persist.SnapshotExt)
			if err := persist.WriteSnapshotFile(p, g); err != nil {
				backendBench.err = err
				return
			}
			backendBench.g[s.name] = g
			backendBench.path[s.name] = p
		}
	})
	if backendBench.err != nil {
		b.Fatal(backendBench.err)
	}
	return backendBench.g[size], backendBench.path[size]
}

// rssBytes reads the process's resident set size from /proc (Linux);
// 0 when unavailable, in which case the metric is simply not reported.
func rssBytes() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmRSS:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmRSS:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseFloat(string(fields[0]), 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// openBackendFromSnapshot loads one backend instance from a snapshot
// file, the way graphd's recovery path would.
func openBackendFromSnapshot(kind gstore.Kind, path string) (gstore.Graph, error) {
	switch kind {
	case gstore.KindHeap:
		g, err := persist.ReadSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		return gstore.Wrap(g), nil
	case gstore.KindCompact:
		return persist.ReadCompactFile(path)
	case gstore.KindMmap:
		return persist.OpenMapped(path)
	}
	return nil, fmt.Errorf("unknown backend %q", kind)
}

// BenchmarkBackendLoad measures cold snapshot-to-queryable time per
// backend and size: full decode + validation for heap and compact,
// mmap + verification (no copies) for the mapped backend. rss-bytes is
// the process RSS sampled after the timed loads — the mapped pages it
// includes are page-cache shared and evictable, unlike the heap ones.
func BenchmarkBackendLoad(b *testing.B) {
	for _, size := range backendBenchSizes {
		for _, kind := range gstore.Kinds() {
			b.Run(size.name+"/"+string(kind), func(b *testing.B) {
				g, path := backendBenchSnapshot(b, size.name)
				b.ReportAllocs()
				b.ResetTimer()
				var live gstore.Graph
				for i := 0; i < b.N; i++ {
					bg, err := openBackendFromSnapshot(kind, path)
					if err != nil {
						b.Fatal(err)
					}
					if bg.N() != g.N() {
						b.Fatalf("loaded n=%d, want %d", bg.N(), g.N())
					}
					if live != nil {
						gstore.Close(live)
					}
					live = bg
				}
				b.StopTimer()
				if r := rssBytes(); r > 0 {
					b.ReportMetric(r, "rss-bytes")
				}
				gstore.Close(live)
				b.Logf("backend=%s n=%d m=%d", kind, g.N(), g.M())
			})
		}
	}
}

// BenchmarkBackendPPR measures steady-state PPR query latency on each
// backend: pooled workspace, kernel push, no map conversion — the
// configuration graphd serves. The acceptance criterion of the gstore
// refactor is heap staying within 10% of the pre-refactor loop; compact
// and mmap trade a bounded slowdown (uint32→int widening per edge) for
// the memory column reported by BenchmarkBackendLoad.
func BenchmarkBackendPPR(b *testing.B) {
	for _, size := range backendBenchSizes {
		for _, kind := range gstore.Kinds() {
			b.Run(size.name+"/"+string(kind), func(b *testing.B) {
				g, path := backendBenchSnapshot(b, size.name)
				bg, err := openBackendFromSnapshot(kind, path)
				if err != nil {
					b.Fatal(err)
				}
				defer gstore.Close(bg)
				seeds := []int{g.N() / 2}
				pool := kernel.NewPool(bg.N())
				pool.Put(pool.Get())
				b.ReportAllocs()
				b.ResetTimer()
				var support int
				for i := 0; i < b.N; i++ {
					ws := pool.Get()
					if _, err := (kernel.PushACL{Alpha: 0.1, Eps: 1e-4}).Diffuse(bg, ws, seeds); err != nil {
						b.Fatal(err)
					}
					support = ws.PSupport()
					pool.Put(ws)
				}
				b.Logf("backend=%s support=%d n=%d m=%d", kind, support, g.N(), g.M())
			})
		}
	}
}

// Communities: the Figure 1 scenario end-to-end. Generate a social-
// network-like graph (forest fire model), compute the Network Community
// Profile with both the spectral (LocalSpectral) and flow-based
// (Metis+MQI) methods, and print the three panels: size-resolved
// conductance and the two niceness measures. This is the workload the
// paper's introduction motivates — finding clusters of 10³–10⁴ nodes in
// a large social or information network.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/ncp"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ForestFire(gen.ForestFireConfig{N: 4000, FwdProb: 0.37, Ambs: 1}, rng)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("forest-fire network: n=%d m=%d (stand-in for AtP-DBLP; see DESIGN.md)\n\n", g.N(), g.M())

	spectral, err := ncp.SpectralProfile(g, ncp.SpectralConfig{Seeds: 12}, rng)
	if err != nil {
		log.Fatalf("spectral profile: %v", err)
	}
	flow, err := ncp.FlowProfile(g, ncp.FlowConfig{}, rng)
	if err != nil {
		log.Fatalf("flow profile: %v", err)
	}

	fmt.Println("NCP envelopes (size-resolved min conductance — Fig. 1(a)):")
	fmt.Printf("%-12s %-14s %s\n", "size", "spectral φ", "flow φ")
	spEnv := envMap(spectral)
	flEnv := envMap(flow)
	for b := 0; b < 20; b++ {
		s, okS := spEnv[b]
		f, okF := flEnv[b]
		if !okS && !okF {
			continue
		}
		fmt.Printf("[%d,%d)  %-14s %s\n", 1<<b, 1<<(b+1), fmtOr(s, okS), fmtOr(f, okF))
	}

	fmt.Println("\nniceness of clusters with 8–512 nodes (Fig. 1(b) and 1(c)):")
	for _, p := range []*ncp.Profile{spectral, flow} {
		ms, err := ncp.EvaluateProfile(g, p, 8, 512)
		if err != nil {
			log.Fatalf("evaluate: %v", err)
		}
		fmt.Printf("\n%s method, %d clusters: size / φ / avg-path / ext-int-ratio\n", p.Method, len(ms))
		for i, m := range ms {
			if i >= 12 {
				fmt.Printf("  ... (%d more)\n", len(ms)-12)
				break
			}
			fmt.Printf("  %-6d %-9.4g %-8.3g %.3g\n", m.Size, m.Conductance, m.AvgPathLen, m.ExtIntRatio)
		}
	}
	fmt.Println("\npaper's reading: flow wins panel (a); spectral clusters are 'nicer' on (b)/(c) —")
	fmt.Println("two approximation algorithms for the same objective regularize differently.")
}

func envMap(p *ncp.Profile) map[int]float64 {
	out := map[int]float64{}
	for _, pt := range p.MinEnvelope() {
		b := 0
		for s := pt.Size; s > 1; s >>= 1 {
			b++
		}
		out[b] = pt.Conductance
	}
	return out
}

func fmtOr(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.5g", v)
}

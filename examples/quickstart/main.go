// Quickstart: build a graph, compute its Fiedler vector, partition it
// with the spectral sweep, and check the result against the Cheeger
// bounds — the minimal tour of the library's core objects.
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/spectral"
)

func main() {
	// A dumbbell: two 12-cliques joined by a 4-node path. Its minimum
	// conductance cut severs the path.
	g := gen.Dumbbell(12, 4)
	fmt.Printf("graph: n=%d m=%d volume=%g\n", g.N(), g.M(), g.Volume())

	// The leading nontrivial eigenpair of the normalized Laplacian.
	fied, err := spectral.Fiedler(g, spectral.FiedlerOptions{})
	if err != nil {
		log.Fatalf("fiedler: %v", err)
	}
	fmt.Printf("λ₂ = %.6g (Cheeger: %.6g ≤ φ(G) ≤ %.6g)\n",
		fied.Lambda2,
		spectral.Lambda2LowerBoundCheeger(fied.Lambda2),
		spectral.Lambda2UpperBoundCheeger(fied.Lambda2))

	// Spectral partition: embed on D^{-1/2}v₂ and sweep.
	res, err := partition.Spectral(g, spectral.FiedlerOptions{})
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	fmt.Printf("spectral sweep cut: φ = %.6g, |S| = %d\n", res.Conductance, len(res.Set))

	// Verify against the graph's own accounting.
	inS := g.Membership(res.Set)
	fmt.Printf("check: cut=%g vol(S)=%g vol(S̄)=%g φ=%.6g\n",
		g.Cut(inS), g.VolumeOf(inS), g.Volume()-g.VolumeOf(inS), g.Conductance(inS))

	// The guarantee Cheeger promises for the sweep cut.
	if res.Conductance <= res.CheegerUpper {
		fmt.Printf("sweep cut meets the quadratic guarantee: %.6g ≤ √(2λ₂) = %.6g\n",
			res.Conductance, res.CheegerUpper)
	}

	// Compare with the flow-based pipeline on the same graph.
	mqi, err := partition.MetisMQI(g, partition.MultilevelOptions{})
	if err != nil {
		log.Fatalf("metis+mqi: %v", err)
	}
	fmt.Printf("metis+mqi:          φ = %.6g, |S| = %d\n", mqi.Conductance, len(mqi.Set))

	_ = graph.SetOf // the graph package's set helpers are the common currency
}

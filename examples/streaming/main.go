// Streaming / dynamic / batch PageRank: the Section 3.3 database-
// environment primitives working together on one evolving network.
//
//  1. Estimate global PageRank over a multi-pass edge stream (never
//     holding the graph in random-access form) and compare against the
//     in-memory iterative solution.
//  2. Maintain a Personalized PageRank vector incrementally while edges
//     arrive and depart, without recomputation.
//  3. Answer "related nodes" queries for a batch of sources with the
//     worker-pool push primitive.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/stream"
	"repro/internal/vec"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A ring of cliques: obvious communities, so the PPR results are easy
	// to eyeball.
	g := gen.RingOfCliques(6, 8) // 48 nodes: clique k = nodes 8k..8k+7
	fmt.Printf("graph: n=%d m=%d (6 cliques of 8 in a ring)\n\n", g.N(), g.M())

	// --- 1. PageRank over an edge stream -------------------------------
	gamma := 0.2
	st := stream.StreamOf(g, rng)
	mc, err := stream.StreamPageRank(st, stream.PageRankOptions{
		Walks: 40000, Gamma: gamma, MaxSteps: 200,
	}, rng)
	if err != nil {
		log.Fatalf("stream pagerank: %v", err)
	}

	uniform := make([]float64, g.N())
	for i := range uniform {
		uniform[i] = 1 / float64(g.N())
	}
	exact, err := diffusion.PageRank(g, uniform, gamma, diffusion.PageRankOptions{})
	if err != nil {
		log.Fatalf("iterative pagerank: %v", err)
	}
	fmt.Printf("streaming estimate after %d passes (40k walks):\n", mc.Passes)
	fmt.Printf("  L1 distance to iterative solution: %.4f\n", vec.Norm1(vec.Sub(mc.Scores, exact)))
	fmt.Printf("  (walks capped at pass budget: %d)\n\n", mc.WalksCapped)

	// --- 2. incremental PPR on an evolving graph -----------------------
	dg, err := stream.NewDynamicGraph(g.N())
	if err != nil {
		log.Fatal(err)
	}
	ppr, err := stream.NewIncrementalPPR(dg, 0, gamma, 4000, rng)
	if err != nil {
		log.Fatalf("incremental ppr: %v", err)
	}
	// Insert the whole graph edge by edge, as a social network would grow.
	var edges []stream.Edge
	g.Edges(func(u, v int, w float64) { edges = append(edges, stream.Edge{U: u, V: v, W: w}) })
	for _, e := range edges {
		if err := ppr.AddEdge(e.U, e.V, e.W); err != nil {
			log.Fatal(err)
		}
	}
	est := ppr.Estimate()
	var ownClique float64
	for u := 0; u < 8; u++ {
		ownClique += est[u]
	}
	fmt.Printf("incremental PPR from node 0 after %d insertions (%d suffix redraws):\n",
		len(edges), ppr.Resampled())
	fmt.Printf("  mass on node 0's own clique: %.3f\n", ownClique)

	// Now cut node 0's clique off from the ring on one side and watch the
	// mass shift further into the clique.
	bridgeU, bridgeV := findBridge(g)
	if err := ppr.RemoveEdge(bridgeU, bridgeV); err != nil {
		log.Fatal(err)
	}
	est = ppr.Estimate()
	ownClique = 0
	for u := 0; u < 8; u++ {
		ownClique += est[u]
	}
	fmt.Printf("  after deleting ring edge (%d,%d): clique mass %.3f\n\n", bridgeU, bridgeV, ownClique)

	// --- 3. batch PPR on the kernel batch engine ------------------------
	// BatchPersonalizedPageRank rides kernel.BatchDiffuser: sources are
	// diffused in cache blocks over pooled workspaces, byte-identical to
	// running each source alone.
	sources := []int{0, 8, 16, 24, 32, 40} // one per clique
	batch, err := stream.BatchPersonalizedPageRank(g, sources, stream.BatchPPROptions{
		Alpha: 0.15, Eps: 1e-5, Workers: 4,
	})
	if err != nil {
		log.Fatalf("batch ppr: %v", err)
	}
	fmt.Printf("batch PPR for %d sources (total push work %.0f):\n", len(sources), batch.TotalWork)
	for i, s := range batch.Sources {
		top := stream.TopK(batch.Vectors[i], 4)
		fmt.Printf("  source %2d: top related nodes %v (its own clique: %d..%d)\n",
			s, top, s, s+7)
	}
}

// findBridge returns one inter-clique ring edge incident to clique 0.
func findBridge(g interface {
	Edges(func(u, v int, w float64))
}) (int, int) {
	bu, bv := -1, -1
	g.Edges(func(u, v int, w float64) {
		if bu >= 0 {
			return
		}
		inA := u < 8
		inB := v < 8
		if inA != inB {
			bu, bv = u, v
		}
	})
	return bu, bv
}

// Regularization as robustness: the paper's thesis made operational.
//
// Two demonstrations on noisy graphs:
//
//  1. Ranking stability (Section 3.1's eigenvector-vs-diffusion story):
//     perturb a power-law network and measure how much each ranking
//     method's output moves. The exact extremal eigenvector is the most
//     sensitive; PageRank's teleport and early stopping damp the motion.
//  2. Regularized estimation (reference [36]): when the observed graph is
//     an edge-sample of a population graph, the entropy-regularized SDP
//     solution (= a heat-kernel diffusion) estimates the population's
//     spectral structure with lower risk than the exact eigenvector of
//     the sample — the U-shaped risk curve in η.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/rank"
	"repro/internal/regsdp"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// --- 1. rank stability under edge noise ----------------------------
	w := gen.PowerLawWeights(250, 2.5, 2, 30, rng)
	g0, err := gen.ChungLu(w, rng)
	if err != nil {
		log.Fatalf("generator: %v", err)
	}
	nodes := g0.LargestComponent()
	g, _, err := g0.Subgraph(nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-law network: n=%d m=%d\n\n", g.N(), g.M())

	results, err := rank.Stability(g, rank.StandardMethods(), rank.StabilityOptions{
		Frac: 0.05, Trials: 8, TopK: 20,
	}, rng)
	if err != nil {
		log.Fatalf("stability: %v", err)
	}
	fmt.Println("ranking stability under 5% edge rewiring (higher = more robust):")
	fmt.Printf("  %-20s %10s %14s\n", "method", "mean tau", "top-20 overlap")
	for _, r := range results {
		fmt.Printf("  %-20s %10.4f %14.3f\n", r.Method, r.MeanTau, r.MeanTopK)
	}
	fmt.Println()

	// --- 2. regularized Laplacian estimation ---------------------------
	population := gen.RingOfCliques(6, 6)
	etas := []float64{0.5, 1, 2, 5, 10, 50, 200, 1000}
	res, err := regsdp.BayesRisk(population, 0.7, etas, 12, rng)
	if err != nil {
		log.Fatalf("bayes risk: %v", err)
	}
	fmt.Println("estimating the population Fiedler structure from 70% edge samples:")
	fmt.Printf("  exact (unregularized) estimator risk: %.4f\n", res.UnregularizedRisk)
	fmt.Println("  heat-kernel (entropy-regularized) estimator risk by eta:")
	for _, pt := range res.Curve {
		marker := ""
		if pt.Eta == res.BestEta {
			marker = "   <- best"
		}
		fmt.Printf("    eta=%7.1f   risk %.4f%s\n", pt.Eta, pt.Risk, marker)
	}
	fmt.Printf("  best regularized risk %.4f at eta=%g: %.1f%% below the exact estimator.\n",
		res.BestRisk, res.BestEta, 100*res.Improvement())
	fmt.Println()
	fmt.Println("reading: small eta over-smooths (all-directions average), large eta")
	fmt.Println("converges to the exact-but-noisy eigenvector; the minimum in between is")
	fmt.Println("the implicit regularization the paper says approximation buys for free.")
}

// Serving walkthrough: boot the graphd service layer in-process, then
// drive it exclusively through the pkg/client Go SDK — generate a
// graph, answer interactive local-clustering queries (watching the
// result cache work), run a cancellable NCP job on the async queue, and
// read the daemon's metrics. No JSON is constructed by hand anywhere:
// the typed requests and responses in pkg/api are the whole contract.
//
// The same client works against a standalone daemon:
//
//	go run ./cmd/graphd -addr :8080
//	c, _ := client.New("http://localhost:8080")
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/service"
	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	srv, err := service.NewServer(service.Config{JobWorkers: 2})
	must(err)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("graphd serving on %s\n\n", ts.URL)

	c, err := client.New(ts.URL,
		client.WithTimeout(30*time.Second),
		client.WithRetries(2),
		client.WithPollInterval(10*time.Millisecond),
	)
	must(err)
	ctx := context.Background()

	// 1. Generate a graph server-side: a ring of cliques has planted
	// community structure, so the local methods have something to find.
	info, err := c.Graphs.Generate(ctx, "demo", api.GenerateRequest{
		Family: "ring_of_cliques", K: 16, CliqueN: 12,
	})
	must(err)
	fmt.Printf("generated %q: %d nodes, %d edges, state=%s\n",
		info.Name, info.Nodes, info.Edges, info.State)

	// 2. Interactive queries. The first PPR costs a push computation...
	query := api.PPRRequest{Seeds: []int{0}, Alpha: 0.1, Eps: 1e-4, Sweep: true}
	start := time.Now()
	ppr, err := c.Graphs.PPR(ctx, "demo", query)
	must(err)
	fmt.Printf("ppr: support=%d sweep finds %d nodes at phi=%.4f (%v, cache miss)\n",
		ppr.Support, ppr.Sweep.Size, ppr.Sweep.Conductance,
		time.Since(start).Round(time.Microsecond))

	// ...the identical repeat is answered from the LRU cache.
	start = time.Now()
	_, err = c.Graphs.PPR(ctx, "demo", query)
	must(err)
	fmt.Printf("ppr (repeat): %v, cache hit\n", time.Since(start).Round(time.Microsecond))

	// 3. The other strongly-local methods ride the same endpoint family.
	lc, err := c.Graphs.LocalCluster(ctx, "demo", api.LocalClusterRequest{
		Method: "nibble", Seeds: []int{5}, Eps: 1e-4, Steps: 30,
	})
	must(err)
	fmt.Printf("nibble: %d-node cluster at phi=%.4f touching only %d nodes\n\n",
		lc.Size, lc.Conductance, lc.Support)

	// 4. Global work goes to the async queue: submit an NCP job, wait
	// for it, decode the typed result.
	req, err := api.NewJob("ncp", "demo", &api.NCPJobParams{
		Method: "spectral", Seeds: 8, BaseSeed: 1,
	})
	must(err)
	view, err := c.Jobs.Submit(ctx, req)
	must(err)
	fmt.Printf("submitted NCP job %s\n", view.ID)
	var ncp api.NCPJobResult
	view, err = c.Jobs.WaitResult(ctx, view.ID, &ncp)
	must(err)
	fmt.Printf("NCP job %s in %.0fms: %d clusters sampled; envelope:\n",
		view.Status, view.RunTimeMS, ncp.Spectral.Clusters)
	for _, p := range ncp.Spectral.Envelope {
		fmt.Printf("  size<=%-5d min phi = %.4f\n", p.Size, p.Conductance)
	}

	// 5. Typed errors carry machine-readable codes: a deleted graph is
	// api.CodeNotFound, not a string to parse.
	must(c.Graphs.Delete(ctx, "demo"))
	if _, err := c.Graphs.Stats(ctx, "demo"); api.IsNotFound(err) {
		fmt.Printf("\nafter delete: stats correctly fails with code %q\n", api.CodeNotFound)
	} else {
		log.Fatalf("expected not_found, got %v", err)
	}

	// 6. The metrics endpoint exposes the cache hit recorded above.
	metrics, err := c.Metrics(ctx)
	must(err)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "graphd_cache_hits_total") ||
			strings.HasPrefix(line, "graphd_jobs_finished_total") {
			fmt.Println(line)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

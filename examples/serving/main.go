// Serving walkthrough: boot the graphd service layer in-process, load a
// graph over HTTP, answer interactive local-clustering queries (watching
// the result cache work), and run a cancellable NCP job on the async
// queue — the full tour of internal/service without needing curl.
//
// The same requests work against a standalone daemon:
//
//	go run ./cmd/graphd -addr :8080
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	srv := service.NewServer(service.Config{JobWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("graphd serving on %s\n\n", ts.URL)

	// 1. Generate a graph server-side: a ring of cliques has planted
	// community structure, so the local methods have something to find.
	resp := post(ts.URL+"/v1/graphs/demo/generate",
		`{"family":"ring_of_cliques","k":16,"clique_n":12}`)
	fmt.Printf("generate: %s\n", resp)

	// 2. Interactive queries. The first PPR costs a push computation...
	query := `{"seeds":[0],"alpha":0.1,"eps":0.0001,"sweep":true}`
	start := time.Now()
	resp = post(ts.URL+"/v1/graphs/demo/ppr", query)
	var ppr struct {
		Support int `json:"support"`
		Sweep   struct {
			Size        int     `json:"size"`
			Conductance float64 `json:"conductance"`
		} `json:"sweep"`
	}
	must(json.Unmarshal([]byte(resp), &ppr))
	fmt.Printf("ppr: support=%d sweep finds %d nodes at φ=%.4f (%v, cache miss)\n",
		ppr.Support, ppr.Sweep.Size, ppr.Sweep.Conductance, time.Since(start).Round(time.Microsecond))

	// ...the identical repeat is answered from the LRU cache.
	start = time.Now()
	post(ts.URL+"/v1/graphs/demo/ppr", query)
	fmt.Printf("ppr (repeat): %v, cache hit\n", time.Since(start).Round(time.Microsecond))

	// 3. The other strongly-local methods ride the same endpoint family.
	resp = post(ts.URL+"/v1/graphs/demo/localcluster",
		`{"method":"nibble","seeds":[5],"eps":0.0001,"steps":30}`)
	var lc struct {
		Size        int     `json:"size"`
		Conductance float64 `json:"conductance"`
		Support     int     `json:"support"`
	}
	must(json.Unmarshal([]byte(resp), &lc))
	fmt.Printf("nibble: %d-node cluster at φ=%.4f touching only %d nodes\n\n",
		lc.Size, lc.Conductance, lc.Support)

	// 4. Global work goes to the async queue: submit an NCP job, poll it
	// to completion, read the envelope.
	resp = post(ts.URL+"/v1/jobs",
		`{"type":"ncp","graph":"demo","params":{"method":"spectral","seeds":8,"base_seed":1}}`)
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	must(json.Unmarshal([]byte(resp), &job))
	fmt.Printf("submitted NCP job %s\n", job.ID)
	for job.Status != "done" && job.Status != "failed" && job.Status != "cancelled" {
		time.Sleep(10 * time.Millisecond)
		must(json.Unmarshal([]byte(get(ts.URL+"/v1/jobs/"+job.ID)), &job))
	}
	var ncp struct {
		Spectral struct {
			Clusters int `json:"clusters"`
			Envelope []struct {
				Size        int     `json:"size"`
				Conductance float64 `json:"conductance"`
			} `json:"envelope"`
		} `json:"spectral"`
	}
	must(json.Unmarshal([]byte(get(ts.URL+"/v1/jobs/"+job.ID+"/result")), &ncp))
	fmt.Printf("NCP job %s: %d clusters sampled; envelope:\n", job.Status, ncp.Spectral.Clusters)
	for _, p := range ncp.Spectral.Envelope {
		fmt.Printf("  size≈%-5d min φ = %.4f\n", p.Size, p.Conductance)
	}

	// 5. The metrics endpoint exposes the cache hit just recorded.
	for _, line := range strings.Split(get(ts.URL+"/metrics"), "\n") {
		if strings.HasPrefix(line, "graphd_cache_hits_total") ||
			strings.HasPrefix(line, "graphd_jobs_finished_total") {
			fmt.Println(line)
		}
	}
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	must(err)
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode >= 400 {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, out)
	}
	return string(out)
}

func get(url string) string {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode >= 400 {
		log.Fatalf("GET %s: %d %s", url, resp.StatusCode, out)
	}
	return string(out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

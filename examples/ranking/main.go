// Ranking: PageRank as a spectral ranking method (§3.1), with the
// early-stopping-as-regularization demonstration. We rank the nodes of a
// web-like power-law graph with the Power Method run to convergence and
// truncated early, and we verify the §3.1 theory: the PageRank operator
// at teleportation γ exactly solves the log-det regularized SDP.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/diffusion"
	"repro/internal/gen"
	"repro/internal/regsdp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	w := gen.PowerLawWeights(400, 2.3, 2, 40, rng)
	g, err := gen.ChungLu(w, rng)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	nodes := g.LargestComponent()
	gc, _, err := g.Subgraph(nodes)
	if err != nil {
		log.Fatalf("subgraph: %v", err)
	}
	fmt.Printf("power-law web graph (largest component): n=%d m=%d\n\n", gc.N(), gc.M())

	// Global PageRank: uniform seed over all nodes.
	seed := make([]float64, gc.N())
	for i := range seed {
		seed[i] = 1 / float64(gc.N())
	}
	gamma := 0.15
	pr, err := diffusion.PageRank(gc, seed, gamma, diffusion.PageRankOptions{})
	if err != nil {
		log.Fatalf("pagerank: %v", err)
	}
	type ranked struct {
		node int
		mass float64
	}
	rs := make([]ranked, gc.N())
	for u, m := range pr {
		rs[u] = ranked{u, m}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].mass > rs[b].mass })
	fmt.Printf("top 8 nodes by PageRank (γ=%.2f):\n", gamma)
	for i := 0; i < 8 && i < len(rs); i++ {
		fmt.Printf("  #%d node %-5d pr=%.5f deg=%g\n", i+1, rs[i].node, rs[i].mass, gc.Degree(rs[i].node))
	}

	// Early stopping: k Richardson iterations instead of convergence. The
	// truncated iterate is a *regularized* ranking — biased toward the
	// seed — not just a sloppy one.
	fmt.Println("\nearly stopping as implicit regularization (distance from converged ranking):")
	for _, k := range []int{1, 2, 5, 10, 25, 100} {
		xk, err := diffusion.PageRankSteps(gc, seed, gamma, k)
		if err != nil {
			log.Fatalf("pagerank steps: %v", err)
		}
		var dist float64
		for i := range xk {
			d := xk[i] - pr[i]
			if d < 0 {
				d = -d
			}
			dist += d
		}
		fmt.Printf("  k=%-4d ‖x_k − pr‖₁ = %.2e\n", k, dist)
	}

	// The §3.1 theory on a small subgraph: the PageRank operator exactly
	// optimizes Tr(𝓛X) − (1/η)·log det X.
	small, _, err := gc.Subgraph(firstN(gc.N(), 120))
	if err != nil {
		log.Fatalf("small subgraph: %v", err)
	}
	smallNodes := small.LargestComponent()
	small2, _, err := small.Subgraph(smallNodes)
	if err != nil {
		log.Fatalf("component: %v", err)
	}
	spec, err := regsdp.NewSpectrum(small2)
	if err != nil {
		log.Fatalf("spectrum: %v", err)
	}
	op, err := regsdp.PageRankOperator(spec, gamma)
	if err != nil {
		log.Fatalf("operator: %v", err)
	}
	eta, err := regsdp.EtaForPageRank(spec, gamma)
	if err != nil {
		log.Fatalf("eta: %v", err)
	}
	sdp, err := regsdp.Solve(spec, regsdp.LogDet, eta, 0)
	if err != nil {
		log.Fatalf("sdp: %v", err)
	}
	fmt.Printf("\n§3.1 verification on an n=%d subgraph: ‖PageRank-op − LogDet-SDP-opt‖∞ = %.2e (η=%.4g)\n",
		small2.N(), regsdp.MaxWeightDiff(op, sdp), eta)
	fmt.Println("→ running PageRank IS solving a regularized optimization problem, exactly.")
}

func firstN(n, k int) []int {
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// Localcluster: the §3.3 strongly-local methods side by side. From one
// seed node in a planted-community graph we run the ACL push algorithm,
// Spielman–Teng Nibble, Chung's heat-kernel variant, and the global MOV
// program, compare the clusters each returns and the work each does, and
// reproduce the "seed not in its own cluster" curiosity.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/local"
	"repro/internal/partition"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g, err := gen.PlantedPartition(8, 50, 0.3, 0.002, rng)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	seed := 125 // inside block 2 (nodes 100..149)
	fmt.Printf("planted-partition graph: n=%d m=%d, seed node %d (block %d)\n\n",
		g.N(), g.M(), seed, seed/50)

	// ACL push.
	pr, err := local.ApproxPageRank(gstore.Wrap(g), []int{seed}, 0.03, 1e-6)
	if err != nil {
		log.Fatalf("push: %v", err)
	}
	sw, err := local.SweepCut(gstore.Wrap(g), pr.P)
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	fmt.Printf("ACL push:        φ=%.4g |S|=%d  pushes=%d work-volume=%.0f support=%d\n",
		sw.Conductance, len(sw.Set), pr.Pushes, pr.WorkVolume, len(pr.P))

	// Nibble.
	nb, err := local.Nibble(gstore.Wrap(g), []int{seed}, 1e-5, 30)
	if err != nil {
		log.Fatalf("nibble: %v", err)
	}
	if nb.Best != nil {
		fmt.Printf("ST Nibble:       φ=%.4g |S|=%d  steps=%d max-support=%d\n",
			nb.Best.Conductance, len(nb.Best.Set), nb.Steps, nb.MaxSupport)
	}

	// Heat-kernel local.
	hk, err := local.HeatKernelLocal(gstore.Wrap(g), []int{seed}, 5, 1e-6)
	if err != nil {
		log.Fatalf("heat kernel: %v", err)
	}
	hsw, err := local.SweepCut(gstore.Wrap(g), hk.Dist)
	if err != nil {
		log.Fatalf("hk sweep: %v", err)
	}
	fmt.Printf("HK-local:        φ=%.4g |S|=%d  terms=%d max-support=%d\n",
		hsw.Conductance, len(hsw.Set), hk.Terms, hk.MaxSupport)

	// MOV: the optimization approach — touches the whole graph.
	mov, err := local.MOV(g, []int{seed}, -0.05, 0, 0)
	if err != nil {
		log.Fatalf("mov: %v", err)
	}
	msw, err := partition.SweepCutPrefix(g, mov.Embedding, 100)
	if err != nil {
		log.Fatalf("mov sweep: %v", err)
	}
	fmt.Printf("MOV (global):    φ=%.4g |S|=%d  CG-iters=%d touched=%d (all nodes)\n\n",
		msw.Conductance, len(msw.Set), mov.Iterations, g.N())

	// Recovery accounting against the planted block.
	block := make([]int, 50)
	for i := range block {
		block[i] = (seed / 50 * 50) + i
	}
	fmt.Printf("planted block: φ=%.4g — push cluster overlaps it on %d/50 nodes\n",
		g.ConductanceOfSet(block), overlap(sw.Set, block))

	// The §3.3 curiosity: a hub seed whose best cluster excludes it.
	fmt.Println("\nseed-not-in-its-own-cluster (hub attached to a clique and an expander):")
	core, err := gen.RandomRegular(300, 6, rng)
	if err != nil {
		log.Fatalf("expander: %v", err)
	}
	b := graph.NewBuilder(311)
	core.Edges(func(u, v int, w float64) { b.AddWeightedEdge(u, v, w) })
	for i := 300; i < 310; i++ {
		for j := i + 1; j < 310; j++ {
			b.AddEdge(i, j)
		}
	}
	hub := 310
	for i := 300; i < 310; i++ {
		b.AddEdge(hub, i)
	}
	for i := 0; i < 40; i++ {
		b.AddEdge(hub, rng.Intn(300))
	}
	hg, err := b.Build()
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	hnb, err := local.Nibble(gstore.Wrap(hg), []int{hub}, 1e-6, 20)
	if err != nil {
		log.Fatalf("hub nibble: %v", err)
	}
	if hnb.Best == nil {
		log.Fatal("no cut found")
	}
	inside := false
	for _, u := range hnb.Best.Set {
		if u == hub {
			inside = true
		}
	}
	fmt.Printf("  best cluster from seed %d: size %d, φ=%.4g, seed inside: %v\n",
		hub, len(hnb.Best.Set), hnb.Best.Conductance, inside)
	fmt.Println("  → truncation-to-zero regularizes toward the cohesive clique; the seed is left out.")
}

func overlap(a, b []int) int {
	in := map[int]bool{}
	for _, u := range a {
		in[u] = true
	}
	c := 0
	for _, u := range b {
		if in[u] {
			c++
		}
	}
	return c
}
